"""Tests for the schema-validated scenario config pipeline.

Three layers of guarantee, strongest last:

1. error quality — every rejection carries the dotted path of the
   offending field and says what was expected;
2. lossless round-trips — ``Scenario -> dict -> YAML -> Scenario`` is
   the identity for everything the format can express (a hypothesis
   property, not a handful of examples);
3. construction-path equivalence — a scenario loaded from YAML/JSON
   produces a ``SimulationResult`` byte-identical to the python-built
   twin, through every execution backend.
"""

import json
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import (
    Compute,
    Scenario,
    SetWeight,
    loads_config,
    run_scenario,
    server_scenario,
    task,
)
from repro.scenario.io import (
    ConfigError,
    config_from_dict,
    dump_scenario,
    dumps_scenario,
    load_config,
    load_scenario,
    load_sweep,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenario.spec import InteractiveLoop, Mpeg, Probe, ShortJobs
from repro.scenario.sweep import Sweep, run_cells


def _err(data) -> ConfigError:
    with pytest.raises(ConfigError) as excinfo:
        scenario_from_dict(data)
    return excinfo.value


MINIMAL = {"name": "t", "tasks": [{"name": "a"}], "duration": 1.0}


# ----------------------------------------------------------------------
# error paths
# ----------------------------------------------------------------------


class TestErrors:
    def test_missing_name(self):
        err = _err({"tasks": [{"name": "a"}], "duration": 1.0})
        assert err.path == "name"
        assert "required" in err.detail

    def test_wrong_type_names_the_field(self):
        err = _err({**MINIMAL, "cpus": "two"})
        assert err.path == "cpus"
        assert "int" in err.detail

    def test_bool_is_not_an_int(self):
        assert _err({**MINIMAL, "cpus": True}).path == "cpus"

    def test_range_violation(self):
        err = _err({**MINIMAL, "quantum": 0})
        assert err.path == "quantum"
        assert "> 0" in err.detail

    def test_unknown_top_level_key_lists_accepted(self):
        err = _err({**MINIMAL, "qantum": 0.1})
        assert err.path == "qantum"
        assert "quantum" in err.detail

    def test_nested_task_path(self):
        err = _err(
            {
                "name": "t",
                "duration": 1.0,
                "tasks": [{"name": "a"}, {"name": "b", "weight": -1}],
            }
        )
        assert err.path == "tasks[1].weight"

    def test_behavior_kind_path(self):
        err = _err(
            {
                "name": "t",
                "duration": 1.0,
                "tasks": [{"name": "a", "behavior": {"kind": "warp"}}],
            }
        )
        assert err.path == "tasks[0].behavior.kind"
        assert "compute" in err.detail

    def test_stream_arrival_path(self):
        err = _err(
            {
                "name": "t",
                "streams": [
                    {
                        "n": 5,
                        "arrival": {"kind": "poisson"},
                        "demand": {"kind": "fixed", "value": 0.1},
                        "classes": [{"name": "a", "weight": 1.0, "share": 1.0}],
                        "drain_factor": 1.5,
                    }
                ],
            }
        )
        assert err.path == "streams[0].arrival"
        assert "rate" in str(err)

    def test_unknown_scheduler_rejected_at_load_time(self):
        err = _err({**MINIMAL, "scheduler": "cfs"})
        assert err.path == "scheduler"
        assert "sfs" in err.detail

    def test_unknown_cost_model_rejected_at_load_time(self):
        assert _err({**MINIMAL, "cost_model": "quantum-foam"}).path == "cost_model"

    def test_scheduler_params_typo_rejected(self):
        err = _err(
            {**MINIMAL, "scheduler": "sfs", "scheduler_params": {"readjsut": True}}
        )
        assert "readjsut" in str(err)
        assert "readjust" in str(err)

    def test_bad_yaml_syntax(self):
        with pytest.raises(ConfigError, match="invalid YAML"):
            loads_config("{nope: [", fmt="yaml")

    def test_bad_json_syntax(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            loads_config("{nope", fmt="json")

    def test_non_mapping_document(self):
        with pytest.raises(ConfigError, match="mapping"):
            loads_config("- just\n- a\n- list\n", fmt="yaml")

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_config(tmp_path / "nope.yaml")

    def test_duration_required_without_finite_streams(self):
        err = _err({"name": "t", "tasks": [{"name": "a"}]})
        assert "duration" in str(err)


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------


class TestLoading:
    def test_defaults_fill_in(self):
        scenario = scenario_from_dict(MINIMAL)
        assert scenario.scheduler == "sfs"
        assert scenario.cpus == 2
        assert scenario.quantum == 0.2
        assert scenario.tasks[0].weight == 1.0

    def test_groups_expand_to_numbered_tasks(self):
        scenario = scenario_from_dict(
            {
                "name": "t",
                "duration": 1.0,
                "groups": [{"count": 3, "weight": 2.0, "prefix": "w"}],
            }
        )
        assert [t.name for t in scenario.tasks] == ["w-1", "w-2", "w-3"]
        assert all(t.weight == 2.0 for t in scenario.tasks)

    def test_behaviors_and_drivers_and_events(self):
        scenario = scenario_from_dict(
            {
                "name": "t",
                "duration": 5.0,
                "tasks": [
                    {"name": "ed", "behavior": {"kind": "interactive"}},
                    {
                        "name": "mp",
                        "behavior": {"kind": "mpeg", "target_fps": 25.0},
                    },
                ],
                "drivers": [{"kind": "short-jobs", "gap": 0.1}],
                "events": [{"kind": "set-weight", "task": "ed", "weight": 3, "at": 1}],
            }
        )
        assert isinstance(scenario.tasks[0].behavior, InteractiveLoop)
        assert isinstance(scenario.tasks[1].behavior, Mpeg)
        assert scenario.tasks[1].behavior.target_fps == 25.0
        assert isinstance(scenario.drivers[0], ShortJobs)
        assert scenario.events == (SetWeight("ed", 3.0, 1.0),)

    def test_stream_duration_derived_from_drain_factor(self):
        scenario = scenario_from_dict(
            {
                "name": "t",
                "streams": [
                    {
                        "n": 4,
                        "arrival": {"kind": "trace", "times": [0.0, 1.0, 2.0, 3.0]},
                        "demand": {"kind": "fixed", "value": 0.1},
                        "classes": [{"name": "a", "weight": 1.0, "share": 1.0}],
                        "drain_factor": 2.0,
                    }
                ],
            }
        )
        assert scenario.duration == 6.0

    def test_weight_churn_expands_deterministically(self):
        data = {
            "name": "t",
            "duration": 3.0,
            "groups": [{"count": 2, "prefix": "w"}],
            "events": [
                {
                    "kind": "weight-churn",
                    "prefix": "w",
                    "weights": [1, 5],
                    "seed": 13,
                    "start": 0.5,
                    "every": 0.5,
                    "until": 2.0,
                }
            ],
        }
        first = scenario_from_dict(data)
        second = scenario_from_dict(data)
        assert first.events == second.events
        assert [e.at for e in first.events] == [0.5, 1.0, 1.5]
        rng = random.Random(13)
        for event in first.events:
            assert event.task == rng.choice(["w-1", "w-2"])
            assert event.weight == float(rng.choice([1, 5]))

    def test_yaml_and_json_forms_load_identically(self, tmp_path):
        scenario = scenario_from_dict(MINIMAL)
        ypath = tmp_path / "s.yaml"
        jpath = tmp_path / "s.json"
        ypath.write_text(dumps_scenario(scenario, fmt="yaml"))
        jpath.write_text(dumps_scenario(scenario, fmt="json"))
        assert load_scenario(ypath) == load_scenario(jpath) == scenario

    def test_sweep_config(self):
        sweep = config_from_dict(
            {
                "kind": "sweep",
                "base": MINIMAL,
                "schedulers": ["sfs", "sfq"],
                "cpus": [1, 2],
            }
        )
        assert isinstance(sweep, Sweep)
        assert sweep.schedulers == ("sfs", "sfq")
        assert sweep.cpus == (1, 2)

    def test_load_scenario_rejects_sweep_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps({"kind": "sweep", "base": MINIMAL, "schedulers": ["sfs"]})
        )
        with pytest.raises(ConfigError, match="sweep"):
            load_scenario(path)
        assert isinstance(load_sweep(path), Sweep)


# ----------------------------------------------------------------------
# round-trips
# ----------------------------------------------------------------------


def _noop_probe(machine, tasks):
    return None


def _example_scenario() -> Scenario:
    return Scenario(
        name="rt",
        scheduler="sfs-heuristic",
        scheduler_params={"scan_depth": 4},
        cpus=3,
        quantum=0.1,
        duration=2.5,
        tasks=(
            task("a", 2.0, behavior=Compute(0.5)),
            task("b", 1.0, at=0.5),
        ),
        events=(SetWeight("b", 4.0, 1.0),),
        metrics=("shares", "jains"),
        record_events=False,
    )


class TestRoundTrip:
    def test_to_dict_emits_only_nondefaults(self):
        data = scenario_to_dict(scenario_from_dict(MINIMAL))
        assert "cpus" not in data
        assert "scheduler" not in data
        assert data["name"] == "t"

    def test_explicit_roundtrip_identity(self):
        scenario = _example_scenario()
        again = loads_config(dumps_scenario(scenario), fmt="yaml")
        assert again == scenario

    def test_server_scenario_roundtrips(self, tmp_path):
        scenario = server_scenario(60, seed=3)
        path = tmp_path / "server.yaml"
        dump_scenario(scenario, path)
        assert load_scenario(path) == scenario

    def test_probes_refuse_serialisation(self):
        scenario = scenario_from_dict(MINIMAL).with_(
            probes=(Probe(at=0.5, fn=_noop_probe),)
        )
        with pytest.raises(ValueError, match="probes"):
            scenario_to_dict(scenario)


scenario_dicts = st.builds(
    dict,
    name=st.sampled_from(["alpha", "beta-2", "run_3"]),
    scheduler=st.sampled_from(["sfs", "sfq", "stride", "round-robin"]),
    cpus=st.integers(min_value=1, max_value=4),
    quantum=st.sampled_from([0.05, 0.1, 0.2]),
    duration=st.sampled_from([1.0, 2.5, 4.0]),
    quantum_jitter=st.sampled_from([0.0, 0.01]),
    jitter_seed=st.integers(min_value=0, max_value=99),
    record_events=st.booleans(),
    preempt_on_wake=st.booleans(),
    metrics=st.lists(
        st.sampled_from(["shares", "jains", "completed"]),
        max_size=2,
        unique=True,
    ),
    tasks=st.lists(
        st.builds(
            dict,
            weight=st.sampled_from([1.0, 2.5, 8.0]),
            at=st.sampled_from([0.0, 0.25, 1.0]),
            behavior=st.one_of(
                st.just({"kind": "inf"}),
                st.builds(
                    dict,
                    kind=st.just("compute"),
                    cpu_seconds=st.sampled_from([0.3, 1.5]),
                ),
            ),
        ),
        min_size=1,
        max_size=4,
    ),
)


def _name_tasks(data):
    data = dict(data)
    data["tasks"] = [
        {**spec, "name": f"t{i}"} for i, spec in enumerate(data["tasks"])
    ]
    return data


@given(scenario_dicts.map(_name_tasks))
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_identity_property(data):
    """Scenario -> dict -> YAML -> Scenario is lossless."""
    scenario = scenario_from_dict(data)
    assert loads_config(dumps_scenario(scenario, fmt="yaml"), fmt="yaml") == scenario
    assert loads_config(dumps_scenario(scenario, fmt="json"), fmt="json") == scenario


@given(scenario_dicts.map(_name_tasks))
@settings(max_examples=15, deadline=None)
def test_loaded_scenario_runs_identically_property(data):
    """Config-loaded and round-tripped scenarios simulate identically."""
    scenario = scenario_from_dict(data)
    again = loads_config(dumps_scenario(scenario), fmt="yaml")
    r1 = run_scenario(scenario)
    r2 = run_scenario(again)
    assert pickle.dumps(r1.metrics) == pickle.dumps(r2.metrics)


# ----------------------------------------------------------------------
# construction-path equivalence through every backend
# ----------------------------------------------------------------------


class TestBackendEquivalence:
    def test_yaml_server_scenario_byte_identical_per_backend(self, tmp_path):
        python_built = server_scenario(60, seed=5, metrics=("jains",))
        path = tmp_path / "server.yaml"
        dump_scenario(python_built, path)
        loaded = load_scenario(path)
        assert loaded == python_built

        metrics = ("class_shares", "jains", "completed")
        reference = run_cells([python_built], metrics, backend="serial")
        for backend, kwargs in (
            ("serial", {}),
            ("process", {"workers": 2}),
            ("chunked", {"workers": 2, "chunk_size": 1}),
        ):
            cells = run_cells([loaded], metrics, backend=backend, **kwargs)
            assert pickle.dumps(cells[0].metrics) == pickle.dumps(
                reference[0].metrics
            ), backend
