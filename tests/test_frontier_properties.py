"""Model-based tests: the incremental frontier vs the batch oracle.

A :class:`~repro.core.weights.ReadjustmentFrontier` driven by a random
sequence of add / remove / reweight operations must, after every step,
hold exactly the phi assignment the batch ``readjust`` oracle computes
for the current membership — bit for bit, which is what makes golden
outputs independent of whether readjustment ran batch or incrementally.
Also pinned here: the §2.1 structural claims (at most p - 1 capped
members when t >= p, the t < p equal-share waterfill case) and repair
idempotence, plus the comparison-count evidence that a frontier op is
sublinear in membership size.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.weights import ReadjustmentFrontier, readjust

_tids = itertools.count(1)


class Member:
    """The minimal task surface the frontier touches: tid, weight, phi."""

    __slots__ = ("tid", "weight", "phi", "name")

    def __init__(self, weight):
        self.tid = next(_tids)
        self.name = f"m{self.tid}"
        self.weight = weight
        self.phi = float(weight)


weight_strategy = st.one_of(
    st.integers(min_value=1, max_value=1000).map(float),
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False),
)


def assert_matches_oracle(frontier, members, p):
    """Every member's phi equals the batch result, bit for bit."""
    expected = readjust([m.weight for m in members], p)
    for member, phi in zip(members, expected):
        assert member.phi == phi, (
            f"phi diverged for weight {member.weight!r} (p={p}, "
            f"t={len(members)}): frontier {member.phi!r} != batch {phi!r}"
        )
    if len(members) >= p:
        assert frontier.capped_count <= max(0, p - 1)
    assert frontier.queue.is_sorted()


class FrontierMatchesBatch(RuleBasedStateMachine):
    @initialize(p=st.integers(min_value=1, max_value=8))
    def setup(self, p):
        self.p = p
        self.frontier = ReadjustmentFrontier(p)
        self.members = []

    @rule(weight=weight_strategy)
    def add(self, weight):
        member = Member(weight)
        self.members.append(member)
        self.frontier.add(member)

    @precondition(lambda self: self.members)
    @rule(data=st.data())
    def remove(self, data):
        index = data.draw(st.integers(min_value=0, max_value=len(self.members) - 1))
        member = self.members.pop(index)
        self.frontier.remove(member)

    @precondition(lambda self: self.members)
    @rule(data=st.data(), weight=weight_strategy)
    def reweight(self, data, weight):
        index = data.draw(st.integers(min_value=0, max_value=len(self.members) - 1))
        member = self.members[index]
        old = member.weight
        member.weight = weight
        self.frontier.reweight(member, old)

    @precondition(lambda self: self.members)
    @rule()
    def refresh_is_idempotent(self):
        before = [(m.tid, m.phi) for m in self.members]
        self.frontier.refresh()
        assert [(m.tid, m.phi) for m in self.members] == before

    @invariant()
    def matches_batch_oracle(self):
        if not hasattr(self, "members"):
            return  # invariant fires before initialize on some versions
        assert_matches_oracle(self.frontier, self.members, self.p)


TestFrontierMatchesBatch = FrontierMatchesBatch.TestCase
TestFrontierMatchesBatch.settings = settings(max_examples=60, stateful_step_count=40)


@given(
    st.lists(weight_strategy, min_size=1, max_size=30),
    st.integers(min_value=1, max_value=8),
)
def test_build_then_drain_matches_oracle(weights, p):
    """Plain (non-stateful) add-all / remove-half sweep, heavier shrink."""
    frontier = ReadjustmentFrontier(p)
    members = [Member(w) for w in weights]
    for count, member in enumerate(members, start=1):
        frontier.add(member)
        assert_matches_oracle(frontier, members[:count], p)
    survivors = members
    while len(survivors) > 1:
        frontier.remove(survivors[0])
        survivors = survivors[1:]
        assert_matches_oracle(frontier, survivors, p)


@given(st.integers(min_value=2, max_value=8))
def test_waterfill_case_t_below_p(p):
    """t < p: unequal weights equalize to the mean; equal stay put."""
    frontier = ReadjustmentFrontier(p)
    members = [Member(float(w)) for w in range(1, p)]  # t = p - 1 < p
    for member in members:
        frontier.add(member)
    mean = sum(range(1, p)) / (p - 1)
    assert all(abs(m.phi - mean) < 1e-12 for m in members)
    assert_matches_oracle(frontier, members, p)


def test_fast_path_skips_repairs_when_feasible():
    """Feasible deltas (the load < 1 common case) cost no repair scan."""
    frontier = ReadjustmentFrontier(4)
    members = [Member(1.0) for _ in range(64)]
    for member in members:
        frontier.add(member)
    skips_before = frontier.fast_skips
    writes_before = frontier.phi_writes
    for member in members[:16]:
        frontier.remove(member)
        frontier.add(member)
    assert frontier.fast_skips - skips_before == 32
    assert frontier.phi_writes == writes_before  # no phi even touched


def test_per_op_comparisons_grow_sublinearly():
    """Deterministic complexity evidence, no wall clocks: the sorted
    queue's comparison counter for one leave/rejoin cycle grows like
    O(log n), not O(n), from n=100 to n=10000."""

    def comparisons_per_op(n):
        frontier = ReadjustmentFrontier(4)
        members = [Member(float(1 + (i % 7))) for i in range(n)]
        for member in members:
            frontier.add(member)
        before = frontier.queue.comparisons
        for member in members[:32]:
            frontier.remove(member)
            frontier.add(member)
        return (frontier.queue.comparisons - before) / 64

    small, large = comparisons_per_op(100), comparisons_per_op(10_000)
    assert large <= small * 3  # log2(10000)/log2(100) == 2; slack for rounding


def test_phi_writes_bounded_by_p_not_n():
    """Per-op phi churn is O(p) even with caps active at large n."""
    p = 4
    frontier = ReadjustmentFrontier(p)
    members = [Member(1.0) for _ in range(2000)]
    heavy = [Member(10_000.0) for _ in range(p - 1)]  # keeps the cap active
    for member in members + heavy:
        frontier.add(member)
    assert frontier.capped_count == p - 1
    writes_before = frontier.phi_writes
    ops = 0
    for member in members[:64]:
        frontier.remove(member)
        frontier.add(member)
        ops += 2
    per_op = (frontier.phi_writes - writes_before) / ops
    assert per_op <= 2 * p  # independent of the 2000-strong membership
