"""Tests for the simulated SMP machine: dispatch, quanta, blocking,
service accounting, preemption, kills, signals."""

import math

import pytest

from tests.conftest import add_finite, add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.sim.events import Block, Exit, Run
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskState
from repro.workloads.base import GeneratorBehavior


def make_machine(cpus=2, quantum=0.2, **kw) -> Machine:
    return Machine(SurplusFairScheduler(), cpus=cpus, quantum=quantum, **kw)


class TestConstruction:
    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            Machine(SurplusFairScheduler(), cpus=0)

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ValueError):
            Machine(SurplusFairScheduler(), quantum=0.0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            Machine(SurplusFairScheduler(), quantum_jitter=1.5)

    def test_scheduler_cannot_be_attached_twice(self):
        sched = SurplusFairScheduler()
        Machine(sched)
        with pytest.raises(RuntimeError):
            Machine(sched)


class TestServiceAccounting:
    def test_single_task_gets_all_of_one_cpu(self):
        m = make_machine(cpus=1)
        t = add_inf(m, 1, "A")
        m.run_until(10.0)
        assert t.service == pytest.approx(10.0)

    def test_two_tasks_two_cpus_full_utilization(self):
        m = make_machine(cpus=2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 5, "B")
        m.run_until(10.0)
        # Work conservation: both run continuously whatever the weights.
        assert a.service == pytest.approx(10.0)
        assert b.service == pytest.approx(10.0)

    def test_total_service_equals_capacity_when_saturated(self):
        m = make_machine(cpus=2)
        tasks = [add_inf(m, i + 1, f"T{i}") for i in range(5)]
        m.run_until(8.0)
        assert sum(t.service for t in tasks) == pytest.approx(16.0)

    def test_busy_time_matches_service(self):
        m = make_machine(cpus=2)
        tasks = [add_inf(m, 1, f"T{i}") for i in range(3)]
        m.run_until(4.0)
        busy = sum(p.busy_time for p in m.processors)
        assert busy == pytest.approx(sum(t.service for t in tasks))

    def test_late_arrival_gets_no_service_before_arrival(self):
        m = make_machine(cpus=1)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B", at=5.0)
        m.run_until(10.0)
        assert b.service <= 2.6  # about half of the last 5 s
        assert a.service + b.service == pytest.approx(10.0)

    def test_finite_task_exits_after_consuming_cpu(self):
        m = make_machine(cpus=1)
        t = add_finite(m, 0.5, 1, "F")
        m.run_until(2.0)
        assert t.state is TaskState.EXITED
        assert t.service == pytest.approx(0.5)
        assert t.exit_time == pytest.approx(0.5)

    def test_finite_task_exit_time_under_contention(self):
        m = make_machine(cpus=1)
        add_inf(m, 1, "bg")
        t = add_finite(m, 0.4, 1, "F")
        m.run_until(5.0)
        assert t.state is TaskState.EXITED
        assert t.service == pytest.approx(0.4)
        # With one competitor it takes roughly twice its CPU demand.
        assert 0.4 <= t.exit_time <= 1.4


class TestBlockingAndWakeup:
    def test_blocking_task_releases_cpu(self):
        m = make_machine(cpus=1)

        def gen():
            yield Run(0.1)
            yield Block(1.0)
            yield Run(0.1)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="blocky"))
        bg = add_inf(m, 1, "bg")
        m.run_until(3.0)
        assert t.service == pytest.approx(0.2)
        # Background picks up all the slack.
        assert bg.service == pytest.approx(2.8)

    def test_block_durations_are_wall_clock(self):
        m = make_machine(cpus=1)

        def gen():
            yield Run(0.1)
            yield Block(0.5)
            yield Run(0.1)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="b"))
        m.run_until(2.0)
        # 0.1 run + 0.5 sleep + 0.1 run -> exits at 0.7.
        assert t.exit_time == pytest.approx(0.7)

    def test_task_starting_blocked_counts_as_arrival_on_first_wake(self):
        m = make_machine(cpus=2)

        def gen():
            yield Block(1.0)
            yield Run(math.inf)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="sleeper"))
        m.run_until(0.5)
        assert t.state is TaskState.BLOCKED
        m.run_until(2.0)
        assert t.state in (TaskState.RUNNING, TaskState.RUNNABLE)
        assert t.service == pytest.approx(1.0)

    def test_block_count_incremented(self):
        m = make_machine(cpus=1)

        def gen():
            for _ in range(3):
                yield Run(0.05)
                yield Block(0.05)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="b"))
        m.run_until(2.0)
        assert t.block_count == 3


class TestQuanta:
    def test_quantum_expiry_preempts(self):
        m = make_machine(cpus=1, quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(2.0)
        assert a.preempt_count >= 4
        assert b.preempt_count >= 4
        # Equal weights share the single CPU equally.
        assert a.service == pytest.approx(1.0, abs=0.2)

    def test_consecutive_run_segments_do_not_invoke_scheduler(self):
        m = make_machine(cpus=1, quantum=1.0)

        def gen():
            # Two back-to-back run segments inside one quantum.
            yield Run(0.1)
            yield Run(0.1)
            yield Exit()

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="seg"))
        m.run_until(1.0)
        assert t.service == pytest.approx(0.2)
        assert t.dispatch_count == 1

    def test_quantum_jitter_stays_in_bounds(self):
        m = make_machine(cpus=1, quantum=0.2, quantum_jitter=0.1)
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(5.0)
        # With +-10% jitter the share stays near one half.
        assert a.service == pytest.approx(2.5, abs=0.3)

    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            m = make_machine(cpus=2, quantum=0.2, quantum_jitter=0.05, jitter_seed=seed)
            ts = [add_inf(m, w, f"T{w}") for w in (1, 2, 3)]
            m.run_until(5.0)
            return [t.service for t in ts]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestKill:
    def test_kill_running_task(self):
        m = make_machine(cpus=1)
        t = add_inf(m, 1, "A")
        m.kill_task_at(t, 1.0)
        m.run_until(2.0)
        assert t.state is TaskState.EXITED
        assert t.service == pytest.approx(1.0)

    def test_kill_runnable_task(self):
        m = make_machine(cpus=1)
        add_inf(m, 1, "hog")
        t = add_inf(m, 1, "victim")
        # Kill it early, likely while waiting for the CPU.
        m.kill_task_at(t, 0.05)
        m.run_until(1.0)
        assert t.state is TaskState.EXITED

    def test_kill_blocked_task_cancels_wake(self):
        m = make_machine(cpus=1)

        def gen():
            yield Run(0.05)
            yield Block(10.0)
            yield Run(math.inf)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="b"))
        m.kill_task_at(t, 1.0)
        m.run_until(12.0)
        assert t.state is TaskState.EXITED
        assert t.service == pytest.approx(0.05)

    def test_kill_is_idempotent(self):
        m = make_machine(cpus=1)
        t = add_inf(m, 1, "A")
        m.kill_task_at(t, 0.5)
        m.kill_task_at(t, 0.6)
        m.run_until(1.0)
        assert t.state is TaskState.EXITED

    def test_cpu_rescheduled_after_kill(self):
        m = make_machine(cpus=1)
        t = add_inf(m, 1, "A")
        bg = add_inf(m, 1, "B", at=0.0)
        m.kill_task_at(t, 1.0)
        m.run_until(3.0)
        assert bg.service == pytest.approx(3.0 - t.service, abs=0.01)


class TestSignals:
    def test_signal_wakes_infinite_block(self):
        m = make_machine(cpus=1)

        def gen():
            yield Run(0.1)
            yield Block(math.inf)
            yield Run(0.1)
            yield Exit()

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="waiter"))
        m.engine.schedule_at(1.0, m.signal, t)
        m.run_until(2.0)
        assert t.state is TaskState.EXITED
        assert t.exit_time == pytest.approx(1.1)

    def test_signal_nonblocked_task_is_lost(self):
        m = make_machine(cpus=1)
        t = add_inf(m, 1, "A")
        m.engine.schedule_at(0.5, m.signal, t)
        m.run_until(1.0)  # no crash; signal ignored
        assert t.state in (TaskState.RUNNING, TaskState.RUNNABLE)

    def test_signal_later_defers_to_after_current_event(self):
        m = make_machine(cpus=1)

        def gen():
            yield Run(0.1)
            yield Block(math.inf)
            yield Run(0.1)
            yield Exit()

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="w"))
        m.engine.schedule_at(0.5, m.signal_later, t, 0.0)
        m.run_until(2.0)
        assert t.exit_time == pytest.approx(0.6)


class TestObservers:
    def test_exit_callback_invoked(self):
        m = make_machine(cpus=1)
        seen = []
        m.on_task_exit.append(lambda task, now: seen.append((task.name, now)))
        add_finite(m, 0.3, 1, "F")
        m.run_until(1.0)
        assert seen == [("F", pytest.approx(0.3))]

    def test_work_conservation_check_passes_for_sfs(self):
        m = Machine(
            SurplusFairScheduler(), cpus=2, quantum=0.1, check_work_conserving=True
        )
        for i in range(5):
            add_inf(m, i + 1, f"T{i}")
        m.run_until(3.0)  # must not raise

    def test_runnable_count_tracks_states(self):
        m = make_machine(cpus=2)
        add_inf(m, 1, "A")

        def gen():
            yield Run(0.1)
            yield Block(5.0)
            yield Run(math.inf)

        m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="B"))
        m.run_until(1.0)
        assert m.runnable_count == 1
        assert m.live_count == 2


class TestWeightChange:
    def test_change_weight_rebalances_allocation(self):
        m = make_machine(cpus=1, quantum=0.05)
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(5.0)
        before_a = a.service
        m.change_weight(a, 4.0)
        m.run_until(15.0)
        # After the change A should get ~4/5 of the CPU.
        delta_a = a.service - before_a
        assert delta_a / 10.0 == pytest.approx(0.8, abs=0.08)

    def test_set_weight_at_schedules_change(self):
        m = make_machine(cpus=1)
        a = add_inf(m, 1, "A")
        m.set_weight_at(a, 3.0, 1.0)
        m.run_until(2.0)
        assert a.weight == 3.0
