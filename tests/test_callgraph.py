"""Unit tests for the project call-graph builder (:mod:`.callgraph`).

A synthetic ``repro`` package exercises module naming, import-alias
resolution, method lookup through bases, nested-function merging,
direct effect detection (seeded vs unseeded), return-position call
tracking, and iteration-sink detection — the raw facts the
interprocedural rules SFS008/SFS009 are built on.
"""

import textwrap

import pytest

from repro.analysis.staticcheck.callgraph import build_callgraph
from repro.analysis.staticcheck.project import effect_closure, unordered_closure


@pytest.fixture()
def graph(tmp_path):
    """A small synthetic repro package with known facts."""
    pkg = tmp_path / "src" / "repro"
    for sub in ("core", "exec", "util"):
        (pkg / sub).mkdir(parents=True)
        (pkg / sub / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "util" / "clock.py").write_text(
        textwrap.dedent(
            """
            import time
            import random


            def now():
                return time.time()


            def seeded_draw():
                rng = random.Random(7)
                return rng.random()


            def tags():
                return {"a", "b"}


            def tags_indirect():
                return tags()


            def tags_materialized():
                out = tags()
                return sorted(out)
            """
        )
    )
    (pkg / "exec" / "backend.py").write_text(
        textwrap.dedent(
            """
            from repro.util import clock


            def submit():
                return clock.now()
            """
        )
    )
    (pkg / "core" / "sched.py").write_text(
        textwrap.dedent(
            """
            import random

            from repro.exec import backend
            from repro.util.clock import tags_indirect


            class Base:
                def shared(self):
                    return 1


            class Sched(Base):
                def __init__(self):
                    self.count = 0

                def tick(self):
                    return backend.submit()

                def chain(self):
                    return self.shared()

                def outer(self):
                    def inner():
                        return random.random()

                    return inner()

                def spread(self):
                    for item in tags_indirect():
                        self.count += item
                    return self.count
            """
        )
    )
    return build_callgraph(tmp_path / "src")


def test_module_and_function_discovery(graph):
    assert "repro.util.clock" in graph.modules
    assert "repro.core.sched" in graph.modules
    assert "repro.util.clock.now" in graph.functions
    assert "repro.core.sched.Sched.tick" in graph.functions


def test_paths_are_src_relative(graph):
    fn = graph.functions["repro.util.clock.now"]
    assert fn.path == "src/repro/util/clock.py"


def test_direct_effects(graph):
    now = graph.functions["repro.util.clock.now"]
    assert [e.kind for e in now.effects] == ["clock"]
    assert "time.time" in now.effects[0].detail


def test_seeded_rng_is_not_an_effect(graph):
    seeded = graph.functions["repro.util.clock.seeded_draw"]
    assert seeded.effects == []


def test_call_resolution_through_import_alias(graph):
    submit = graph.functions["repro.exec.backend.submit"]
    targets = {c.target for c in submit.calls}
    assert "repro.util.clock.now" in targets


def test_method_call_resolves_through_base_class(graph):
    chain = graph.functions["repro.core.sched.Sched.chain"]
    targets = {c.target for c in chain.calls}
    assert "repro.core.sched.Base.shared" in targets


def test_nested_function_effects_merge_into_enclosing(graph):
    outer = graph.functions["repro.core.sched.Sched.outer"]
    assert "repro.core.sched.Sched.outer.inner" not in graph.functions
    assert {e.kind for e in outer.effects} == {"rng"}


def test_returns_set_and_return_position_propagation(graph):
    assert graph.functions["repro.util.clock.tags"].returns_set
    assert not graph.functions["repro.util.clock.tags_indirect"].returns_set
    unordered = unordered_closure(graph)
    assert unordered["repro.util.clock.tags_indirect"]
    assert not unordered["repro.util.clock.tags_materialized"]


def test_iteration_sink_is_recorded(graph):
    spread = graph.functions["repro.core.sched.Sched.spread"]
    sinks = {c.target: c.sink for c in spread.calls}
    assert sinks.get("repro.util.clock.tags_indirect") is not None


def test_effect_closure_propagates_transitively(graph):
    closures = effect_closure(graph)
    assert "clock" in closures["repro.core.sched.Sched.tick"]
    assert "clock" in closures["repro.exec.backend.submit"]
    assert closures["repro.util.clock.seeded_draw"] == frozenset()
