"""Tests for the Linux 2.2 time-sharing baseline."""

import math

import pytest

from tests.conftest import add_inf
from repro.schedulers.linux_ts import (
    LinuxTimeSharingScheduler,
    PROC_CHANGE_PENALTY,
)
from repro.sim.events import Block, Run
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import GeneratorBehavior
from repro.workloads.cpu_bound import Infinite


def machine(cpus=2, **kw):
    return Machine(LinuxTimeSharingScheduler(), cpus=cpus, quantum=0.2, **kw)


class TestGoodness:
    def test_goodness_zero_when_counter_spent(self):
        sched = LinuxTimeSharingScheduler()
        task = Task(Infinite(), weight=1)
        task.sched["counter"] = 0.0
        assert sched.goodness(task) == 0.0

    def test_goodness_counter_plus_priority(self):
        sched = LinuxTimeSharingScheduler()
        task = Task(Infinite(), weight=1, ts_priority=20)
        task.sched["counter"] = 10.0
        assert sched.goodness(task) == 30.0

    def test_affinity_bonus_on_same_cpu(self):
        sched = LinuxTimeSharingScheduler()
        task = Task(Infinite(), weight=1, ts_priority=20)
        task.sched["counter"] = 10.0
        task.last_cpu = 1
        assert sched.goodness(task, cpu=1) == 30.0 + PROC_CHANGE_PENALTY
        assert sched.goodness(task, cpu=0) == 30.0


class TestEpochs:
    def test_counters_recharge_when_all_spent(self):
        m = machine(cpus=1)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(2.0)
        sched = m.scheduler
        assert sched.recalculations >= 1
        # Both keep making progress across epochs.
        assert a.service > 0.5
        assert b.service > 0.5

    def test_sleeper_keeps_half_counter(self):
        """2.2's interactivity mechanism: counter = counter/2 + priority
        at each epoch, so sleepers accumulate goodness."""
        sched = LinuxTimeSharingScheduler()
        m = Machine(sched, cpus=1, quantum=0.2)

        def gen():
            yield Run(0.01)
            yield Block(5.0)
            yield Run(math.inf)

        sleeper = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="s"))
        add_inf(m, 1, "hog1")
        add_inf(m, 1, "hog2")
        m.run_until(4.0)  # several epochs pass while the sleeper sleeps
        # The sleeping process banked counter: counter > priority.
        assert sleeper.sched["counter"] > 20.0

    def test_weights_are_ignored(self):
        # The TS scheduler has no proportional sharing: a weight-10
        # process gets the same as weight-1 peers (Fig. 6(b)'s point).
        m = machine(cpus=1)
        heavy = add_inf(m, 10, "heavy")
        light = add_inf(m, 1, "light")
        m.run_until(10.0)
        assert heavy.service == pytest.approx(light.service, rel=0.1)


class TestInteractivity:
    def test_interactive_process_preempts_batch(self):
        m = machine(cpus=1)

        def gen():
            while True:
                yield Block(0.5)
                yield Run(0.005)

        inter = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="i"))
        add_inf(m, 1, "batch")
        m.run_until(10.0)
        # ~19 wakeups, each handled promptly thanks to banked goodness.
        assert inter.service == pytest.approx(0.095, abs=0.03)

    def test_quantum_is_counter_times_tick(self):
        sched = LinuxTimeSharingScheduler()
        Machine(sched, cpus=1)
        task = Task(Infinite(), weight=1, ts_priority=20)
        task.sched["counter"] = 20.0
        assert sched.quantum_for(task, 0, 0.0) == pytest.approx(0.2)

    def test_rejects_bad_tick(self):
        with pytest.raises(ValueError):
            LinuxTimeSharingScheduler(tick=0.0)


class TestSMP:
    def test_two_cpus_fully_utilized(self):
        m = machine(cpus=2)
        tasks = [add_inf(m, 1, f"T{i}") for i in range(4)]
        m.run_until(5.0)
        assert sum(t.service for t in tasks) == pytest.approx(10.0)

    def test_equal_processes_get_roughly_equal_service(self):
        m = machine(cpus=2)
        tasks = [add_inf(m, 1, f"T{i}") for i in range(4)]
        m.run_until(20.0)
        services = [t.service for t in tasks]
        assert max(services) - min(services) < 2.0
