"""Tests for the high-N server scenario preset family.

Small-N runs double as behaviour-identity checks for the hot-path
rewrites: work conservation, run-queue sorted-order invariants, and
decimation changing nothing but the curve resolution.
"""

import pickle

import pytest

from repro.scenario import (
    SERVER_WEIGHT_CLASSES,
    Sweep,
    class_shares,
    run_scenario,
    run_sweep,
    server_scenario,
)
from repro.scenario.runner import build_machine
from repro.sim.task import TaskState


class TestConstruction:
    def test_deterministic_per_seed(self):
        a = server_scenario(50, seed=7)
        b = server_scenario(50, seed=7)
        assert a == b

    def test_seed_changes_population(self):
        assert server_scenario(50, seed=1) != server_scenario(50, seed=2)

    def test_population_shape(self):
        scn = server_scenario(200, cpus=2, seed=3)
        assert len(scn.tasks) == 200
        names = {t.name.split("-")[0] for t in scn.tasks}
        assert names <= {name for name, _, _ in SERVER_WEIGHT_CLASSES}
        # arrivals strictly increase; demands are positive and bounded
        ats = [t.at for t in scn.tasks]
        assert all(a < b for a, b in zip(ats, ats[1:]))
        assert all(t.behavior.cpu_seconds > 0 for t in scn.tasks)
        cap = 100.0 * 0.05
        assert all(t.behavior.cpu_seconds <= cap for t in scn.tasks)
        assert scn.duration > ats[-1]

    def test_weights_match_classes(self):
        scn = server_scenario(100, seed=5)
        weights = {name: w for name, w, _ in SERVER_WEIGHT_CLASSES}
        for spec in scn.tasks:
            cls = spec.name.split("-")[0]
            assert spec.weight == weights[cls]

    def test_picklable(self):
        scn = server_scenario(20)
        assert pickle.loads(pickle.dumps(scn)) == scn

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_tasks": 0},
            {"n_tasks": 10, "load": 0.0},
            {"n_tasks": 10, "mean_service": -1.0},
            {"n_tasks": 10, "pareto_shape": 1.0},
            {"n_tasks": 10, "drain_factor": 0.5},
            {"n_tasks": 10,
             "weight_classes": (("a", 1.0, 0.5), ("b", 2.0, 0.2))},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            server_scenario(**kwargs)


@pytest.mark.parametrize("scheduler", ["sfs", "sfq", "round-robin"])
class TestInvariantsSmallN:
    def test_work_conserving_and_sorted_queues(self, scheduler):
        scn = server_scenario(40, cpus=2, scheduler=scheduler, seed=11)
        machine, tasks, _ = build_machine(scn)
        machine.check_work_conserving = True  # raises on an idle CPU
        machine.run_until(scn.duration)
        for queue_name in ("start_queue", "weight_queue"):
            queue = getattr(machine.scheduler, queue_name, None)
            if queue is not None:
                assert queue.is_sorted()
        total = sum(t.service for t in tasks.values())
        assert 0 < total <= machine.total_capacity(0, scn.duration) + 1e-6

    def test_all_jobs_complete_with_long_drain(self, scheduler):
        scn = server_scenario(
            30, cpus=2, scheduler=scheduler, seed=13,
            service_cap_factor=10.0, drain_factor=4.0,
        )
        result = run_scenario(scn)
        for t in result.tasks.values():
            assert t.state is TaskState.EXITED
            assert t.service == pytest.approx(t.behavior.cpu_seconds)


class TestBehaviorIdentity:
    def test_decimation_only_changes_curve_resolution(self):
        base = server_scenario(60, scheduler="sfs", seed=17)
        fine = run_scenario(base)
        coarse = run_scenario(base.with_(service_sample_interval=1.0))
        assert (
            fine.machine.engine.events_fired
            == coarse.machine.engine.events_fired
        )
        for name, t in fine.tasks.items():
            assert coarse.tasks[name].service == t.service
        fine_points = sum(len(t.series) for t in fine.tasks.values())
        coarse_points = sum(len(t.series) for t in coarse.tasks.values())
        assert coarse_points < fine_points
        # Whole-window queries stay exact: the final total is pinned as
        # a series point even when interior points were decimated.
        assert coarse.shares() == fine.shares()
        assert coarse.jains() == pytest.approx(fine.jains())

    def test_decimation_exact_shares_with_undrained_backlog(self):
        # Overloaded and cut off mid-backlog: tasks end the run RUNNABLE
        # or BLOCKED, not just RUNNING/EXITED — their final totals must
        # still be pinned (regression: only on-CPU tasks were settled).
        base = server_scenario(
            60, cpus=2, scheduler="sfs", seed=23, load=6.0,
            drain_factor=1.0,
        )
        fine = run_scenario(base)
        coarse = run_scenario(base.with_(service_sample_interval=1.0))
        assert any(
            t.state is not TaskState.EXITED for t in coarse.tasks.values()
        )
        assert coarse.shares() == fine.shares()
        assert coarse.jains() == pytest.approx(fine.jains())

    def test_decimation_rejects_curve_derived_metrics(self):
        with pytest.raises(ValueError, match="max_lag"):
            server_scenario(
                10, service_sample_interval=0.5, metrics=("max_lag",)
            )

    def test_cost_model_affects_overhead_not_demand(self):
        base = server_scenario(40, scheduler="sfs", seed=19)
        zero = run_scenario(base)
        lmb = run_scenario(base.with_(cost_model="lmbench"))
        assert lmb.machine.trace.overhead_time > 0
        assert zero.machine.trace.overhead_time == 0


class TestFairnessShape:
    def test_overload_orders_per_task_service_by_weight(self):
        # load >> 1: the machine saturates, so per-job mean service must
        # rank by weight class under a proportional-share policy.
        scn = server_scenario(
            90, cpus=2, scheduler="sfs", seed=23, load=6.0,
            drain_factor=1.0,
        )
        result = run_scenario(scn)

        def mean_service(prefix):
            picked = [
                t.service for n, t in result.tasks.items()
                if n.startswith(prefix)
            ]
            return sum(picked) / len(picked)

        assert mean_service("ent-") > mean_service("pro-") > mean_service("std-")

    def test_class_shares_sum_below_capacity(self):
        result = run_scenario(server_scenario(50, seed=29))
        shares = class_shares(result)
        assert set(shares) == {"std", "pro", "ent"}
        assert 0 < sum(shares.values()) <= 1.0 + 1e-9

    def test_class_shares_invariant_to_drain_factor(self):
        # Regression: shares used to be normalized over the *full*
        # duration, shrinking as drain_factor padded idle time after
        # the backlog cleared. The busy-window default must not move.
        def shares_at(drain):
            scn = server_scenario(
                40, cpus=2, seed=11, load=0.7, drain_factor=drain,
            )
            return class_shares(run_scenario(scn))

        a, b = shares_at(2.0), shares_at(4.0)
        for cls in ("std", "pro", "ent"):
            assert a[cls] == pytest.approx(b[cls], rel=1e-12)

    def test_full_window_shares_shrink_with_drain_factor(self):
        # The old normalization stays available as window="full" and
        # keeps its drain-dependent behaviour.
        def shares_at(drain):
            scn = server_scenario(
                40, cpus=2, seed=11, load=0.7, drain_factor=drain,
            )
            return class_shares(run_scenario(scn), window="full")

        a, b = shares_at(2.0), shares_at(4.0)
        assert sum(b.values()) < sum(a.values())

    def test_busy_window_falls_back_to_duration_under_backlog(self):
        from repro.scenario import busy_window_end

        scn = server_scenario(
            40, cpus=2, seed=13, load=6.0, drain_factor=1.0,
        )
        result = run_scenario(scn)
        # Overloaded and undrained: some jobs never finish, so the busy
        # window is the whole run and both windows agree.
        assert busy_window_end(result) == result.duration
        assert class_shares(result) == class_shares(result, window="full")

    def test_unknown_window_rejected(self):
        result = run_scenario(server_scenario(10, seed=3))
        with pytest.raises(ValueError, match="window"):
            class_shares(result, window="warm")


class TestSweepIntegration:
    def test_server_scenario_sweeps_across_policies(self):
        cells = run_sweep(
            Sweep(
                base=server_scenario(30, seed=31),
                schedulers=("sfs", "sfq", "round-robin"),
                metrics=("total_service", "context_switches"),
            ),
            workers=0,
        )
        assert [c.scheduler for c in cells] == ["sfs", "sfq", "round-robin"]
        assert all(c.metrics["total_service"] > 0 for c in cells)
