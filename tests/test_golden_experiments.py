"""Contract tests: the scenario-based experiment rewrite must render
byte-identically to the pre-refactor modules.

``tests/golden/*.txt`` were captured from the hand-rolled experiment
modules before they were rewritten on top of ``repro.scenario`` (one
scaled-down configuration per module, plus the full ``run all`` CLI
transcript in ``all.txt``). Any byte of drift is a real behaviour
change in the pipeline — machine construction order, RNG seeding,
sampling or formatting — and should be treated as a regression.
"""

import pathlib

import pytest

from repro.experiments import (
    fig1_infeasible,
    fig3_heuristic,
    fig4_readjustment,
    fig5_shortjobs,
    fig6a_proportional,
    fig6b_isolation,
    fig6c_interactive,
    fig7_ctxswitch,
    flows_study,
    sensitivity,
    table1_lmbench,
)
from repro.experiments.cli import EXPERIMENTS

GOLDEN = pathlib.Path(__file__).parent / "golden"

#: experiment id -> thunk reproducing the golden (scaled-down) render
CASES = {
    "fig1": lambda: fig1_infeasible.render(
        fig1_infeasible.run("sfq", horizon_quanta=1500)
    ),
    "fig3": lambda: fig3_heuristic.render(
        fig3_heuristic.run(thread_counts=(50,), scan_depths=(5,), decisions=150)
    ),
    "fig4": lambda: fig4_readjustment.render(
        fig4_readjustment.run("sfq-readjust")
    ),
    "fig5": lambda: fig5_shortjobs.render(fig5_shortjobs.run("sfs")),
    "fig6a": lambda: fig6a_proportional.render(
        fig6a_proportional.run(
            weight_pairs=((1, 2),), horizon=30.0, warmup=10.0
        )
    ),
    "fig6b": lambda: fig6b_isolation.render(
        fig6b_isolation.run(compile_counts=(0, 2))
    ),
    "fig6c": lambda: fig6c_interactive.render(
        fig6c_interactive.run(disksim_counts=(1,))
    ),
    "table1": lambda: table1_lmbench.render(table1_lmbench.run(passes=200)),
    "fig7": lambda: fig7_ctxswitch.render(
        fig7_ctxswitch.run(ring_sizes=(2, 8), passes=200)
    ),
    "sensitivity": lambda: sensitivity.render(
        sensitivity.run(
            jitters=(0.0,), seeds=(1,), schedulers=("gms-reference",)
        )
    ),
    "flows": lambda: flows_study.render(
        flows_study.run(n_flows=6, packets_per_flow=60, workers=0)
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_render_is_byte_identical_to_pre_refactor(name):
    golden = (GOLDEN / f"{name}.txt").read_text()
    assert CASES[name]() + "\n" == golden


def _golden_all_sections() -> dict[str, str]:
    """Split the captured `run all` transcript into per-experiment text."""
    sections: dict[str, list[str]] = {}
    current = None
    for line in (GOLDEN / "all.txt").read_text().splitlines():
        if line.startswith("=== "):
            current = line.split()[1]
            sections[current] = []
        elif current is not None:
            sections[current].append(line)
    # Each section ends with the blank separator print() emits.
    return {
        name: "\n".join(lines).rstrip("\n")
        for name, lines in sections.items()
    }


def test_cli_fig4_section_matches_full_golden_transcript():
    """Spot-check a full-scale (unscaled) CLI section byte-for-byte.

    Running all ten at full scale takes ~10 s; fig4 is cheap and covers
    the multi-variant join path (`run(...)` twice, blank-line
    separator).
    """
    sections = _golden_all_sections()
    assert EXPERIMENTS["fig4"]() == sections["fig4"]


def test_golden_transcript_covers_every_experiment():
    assert set(_golden_all_sections()) == set(EXPERIMENTS)
