"""Tests for the §5 processor-affinity extension to SFS."""

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.sim.machine import Machine
from repro.sim.task import TaskState


class _AuditedSFS(SurplusFairScheduler):
    """Checks every affinity decision against fresh surpluses.

    Whenever the bonus keeps a CPU's previous thread, the kept thread's
    *fresh* Eq. 4 surplus must not exceed the fresh minimum over all
    schedulable threads by more than the bonus — the consistency
    contract the stale-key bug could violate.
    """

    def __init__(self, **kw):
        super().__init__(**kw)
        self.violations: list[tuple[float, float]] = []

    def _apply_affinity(self, cpu, best):
        pick = super()._apply_affinity(cpu, best)
        if pick is not None and pick is not best:
            fresh = {
                tid: alpha
                for tid, alpha in self.surpluses().items()
                if self._runnable[tid].state is TaskState.RUNNABLE
            }
            fresh_min = min(fresh.values())
            picked = self.surplus_of(pick)
            if picked > fresh_min + self.affinity_bonus + 1e-12:
                self.violations.append((picked, fresh_min))
        return pick


def run(affinity_bonus, horizon=20.0, cpus=2, n_tasks=6):
    sched = SurplusFairScheduler(affinity_bonus=affinity_bonus)
    machine = Machine(sched, cpus=cpus, quantum=0.1, record_events=False)
    tasks = [add_inf(machine, 1, f"T{i}") for i in range(n_tasks)]
    machine.run_until(horizon)
    return sched, machine, tasks


class TestAffinity:
    def test_rejects_negative_bonus(self):
        with pytest.raises(ValueError):
            SurplusFairScheduler(affinity_bonus=-1.0)

    def test_zero_bonus_is_papers_policy(self):
        sched, machine, _ = run(0.0)
        assert sched.affinity_hits == 0

    def test_bonus_produces_affinity_hits(self):
        sched, machine, _ = run(0.15)
        assert sched.affinity_hits > 0

    def test_affinity_reduces_context_switches(self):
        _, plain, _ = run(0.0)
        _, sticky, _ = run(0.15)
        assert sticky.trace.context_switches < plain.trace.context_switches

    def test_fairness_slack_is_bounded(self):
        # Even with a generous bonus, long-run shares stay proportional:
        # the bonus only reorders near-ties.
        sched = SurplusFairScheduler(affinity_bonus=0.1)
        machine = Machine(sched, cpus=2, quantum=0.1, record_events=False)
        a = add_inf(machine, 1, "A")
        b = add_inf(machine, 2, "B")
        c = add_inf(machine, 1, "C")
        machine.run_until(30.0)
        total = a.service + b.service + c.service
        assert b.service / total == pytest.approx(0.5, abs=0.07)

    def test_affinity_never_idles_cpu(self):
        sched = SurplusFairScheduler(affinity_bonus=0.2)
        machine = Machine(sched, cpus=2, quantum=0.1,
                          check_work_conserving=True)
        for i in range(5):
            add_inf(machine, i + 1, f"T{i}")
        machine.run_until(5.0)  # must not raise

    def test_kept_thread_never_exceeds_fresh_minimum_plus_bonus(self):
        # Regression for the stale-key comparison: the §5 bonus must be
        # measured against *fresh* surpluses, so an affinity pick can
        # never be more than the bonus past the fresh minimum.
        sched = _AuditedSFS(affinity_bonus=0.05)
        machine = Machine(sched, cpus=2, quantum=0.1, record_events=False)
        for i in range(7):
            add_inf(machine, 1 + (i % 3), f"T{i}")
        machine.run_until(15.0)
        assert sched.affinity_hits > 0  # the audit actually exercised picks
        assert sched.violations == []

    def test_works_with_fixed_point_tags(self):
        from repro.core.fixed_point import FixedTags

        sched = SurplusFairScheduler(
            affinity_bonus=0.1, tag_math=FixedTags(n=4)
        )
        machine = Machine(sched, cpus=2, quantum=0.1, record_events=False)
        tasks = [add_inf(machine, 1, f"T{i}") for i in range(4)]
        machine.run_until(5.0)
        assert sum(t.service for t in tasks) == pytest.approx(10.0)
