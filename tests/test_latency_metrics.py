"""Per-job sojourn / first-dispatch latency tracking and metrics."""

import math

import pytest

from repro.scenario import (
    Compute,
    Scenario,
    Sweep,
    percentile,
    run_scenario,
    run_sweep,
    task,
)


def _two_jobs(cpus=1, quantum=0.2):
    return Scenario(
        name="latency-two-jobs",
        scheduler="sfs",
        cpus=cpus,
        quantum=quantum,
        duration=5.0,
        tasks=(
            task("std-1", behavior=Compute(0.5)),
            task("std-2", behavior=Compute(0.5)),
        ),
    )


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_bad_q_raises(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([3.0], 99) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_p95_linear_method(self):
        values = list(range(1, 101))
        # numpy's "linear" method on 1..100: rank 94.05 -> 95.05
        assert percentile([float(v) for v in values], 95) == pytest.approx(95.05)


class TestTaskFields:
    def test_sojourn_and_first_dispatch(self):
        result = run_scenario(_two_jobs())
        first = result.task("std-1")
        second = result.task("std-2")
        # One CPU: std-1 (lower tid) dispatches at t=0; std-2 waits a
        # quantum. Both complete within the horizon.
        assert first.first_dispatch_latency == pytest.approx(0.0)
        assert second.first_dispatch_latency == pytest.approx(0.2)
        assert first.sojourn_time == pytest.approx(first.exit_time)
        assert second.sojourn_time == pytest.approx(second.exit_time)
        # 1.0s of demand finishes within [0.9, 1.0] depending on who
        # got the final interleaved slice.
        assert max(first.sojourn_time, second.sojourn_time) == pytest.approx(1.0)

    def test_unfinished_job_has_no_sojourn(self):
        scn = _two_jobs().with_(duration=0.3)
        result = run_scenario(scn)
        assert result.task("std-2").sojourn_time is None
        assert result.task("std-2").first_dispatch_latency is not None

    def test_never_dispatched_job_has_no_latency(self):
        scn = _two_jobs().with_(duration=0.1, quantum=0.2)
        result = run_scenario(scn)
        assert result.task("std-2").first_dispatch_latency is None


class TestResultAccessors:
    def test_sojourns_filters_by_prefix(self):
        result = run_scenario(_two_jobs())
        assert set(result.sojourns("std-")) == {"std-1", "std-2"}
        assert result.sojourns("pro-") == {}

    def test_sojourn_percentile(self):
        result = run_scenario(_two_jobs())
        values = sorted(result.sojourns().values())
        assert result.sojourn_percentile(100) == pytest.approx(values[-1])

    def test_first_dispatch_latencies(self):
        result = run_scenario(_two_jobs())
        lats = result.first_dispatch_latencies()
        assert lats["std-1"] == pytest.approx(0.0)
        assert lats["std-2"] == pytest.approx(0.2)


class TestCensoredSojourns:
    """In-system job ages as lower bounds (the overload-truncation fix)."""

    def _overloaded(self):
        # One CPU, 3s horizon, 4s of total demand: std-2 arrives at 1.0
        # and cannot finish — it is censored with age 3.0 - 1.0 = 2.0.
        return Scenario(
            name="censored",
            scheduler="sfs",
            cpus=1,
            quantum=0.2,
            duration=3.0,
            tasks=(
                task("std-1", behavior=Compute(0.5)),
                task("std-2", behavior=Compute(3.5), at=1.0),
            ),
        )

    def test_censored_sojourns_include_in_system_ages(self):
        result = run_scenario(self._overloaded())
        censored = result.censored_sojourns()
        assert censored["std-1"] == pytest.approx(result.task("std-1").sojourn_time)
        assert result.task("std-2").sojourn_time is None
        assert censored["std-2"] == pytest.approx(2.0)
        assert result.in_system() == 1

    def test_never_arrived_jobs_excluded(self):
        scn = self._overloaded().with_(
            tasks=(
                task("std-1", behavior=Compute(0.5)),
                task("std-2", behavior=Compute(3.5), at=1.0),
                task("std-3", behavior=Compute(0.5), at=99.0),
            ),
            duration=3.0,
        )
        result = run_scenario(scn)
        assert "std-3" not in result.censored_sojourns()
        assert result.in_system() == 1

    def test_censored_percentile_dominates_completed_max(self):
        result = run_scenario(self._overloaded())
        # The censored max is at least the completed max: censoring can
        # only add mass, never remove the true observations.
        assert result.censored_sojourn_percentile(100) >= result.sojourn_percentile(100)

    def test_canned_metrics_match_accessors(self):
        names = ("sojourn_p95", "sojourn_p95_censored", "in_system")
        result = run_scenario(self._overloaded().with_(metrics=names))
        assert result.metrics["in_system"] == 1
        assert result.metrics["sojourn_p95_censored"][
            "all"
        ] == pytest.approx(result.censored_sojourn_percentile(95))
        # With a censored job in play the estimates must differ here:
        # the age (2.0) exceeds every completed sojourn (0.5).
        assert (
            result.metrics["sojourn_p95_censored"]["all"]
            > result.metrics["sojourn_p95"]["all"]
        )

    def test_no_censoring_means_identical_percentiles(self):
        scn = self._overloaded().with_(duration=6.0)
        result = run_scenario(scn)
        assert result.in_system() == 0
        assert result.censored_sojourn_percentile(95) == pytest.approx(
            result.sojourn_percentile(95)
        )


class TestCannedMetrics:
    METRIC_NAMES = (
        "sojourn_p50",
        "sojourn_p95",
        "sojourn_p99",
        "dispatch_latency_p95",
        "completed",
    )

    def test_from_run_scenario(self):
        result = run_scenario(_two_jobs().with_(metrics=self.METRIC_NAMES))
        assert result.metrics["completed"] == 2
        for name in ("sojourn_p50", "sojourn_p95", "sojourn_p99"):
            by_class = result.metrics[name]
            assert set(by_class) == {"std", "all"}
            assert by_class["all"] > 0
            assert not math.isnan(by_class["std"])
        assert (
            result.metrics["sojourn_p50"]["all"]
            <= result.metrics["sojourn_p99"]["all"]
        )
        assert result.metrics["dispatch_latency_p95"]["all"] >= 0

    def test_empty_when_nothing_completes(self):
        scn = Scenario(
            name="latency-inf",
            duration=1.0,
            tasks=(task("std-1"),),
            metrics=("sojourn_p95", "completed"),
        )
        result = run_scenario(scn)
        assert result.metrics["sojourn_p95"] == {}
        assert result.metrics["completed"] == 0

    def test_from_sweep_workers(self):
        sweep = Sweep(
            base=_two_jobs(),
            schedulers=("sfs", "sfq"),
            metrics=("sojourn_p95", "completed"),
        )
        cells = run_sweep(sweep, workers=0)
        assert len(cells) == 2
        for cell in cells:
            assert cell.metrics["completed"] == 2
            assert cell.metrics["sojourn_p95"]["all"] > 0
            assert cell.wall_s > 0
