"""Tests for the compiled-boundary conformance checker (SFS010/SFS011).

The C tokenizer gets unit coverage, the real repo must check clean,
and fault injection mutates a *copy* of ``_engine.c`` — counter
rename, alpha operand swap, dropped mirrored method, stale slot
offset, undeclared extra method — asserting each drift is flagged as
a blocking finding with the right rule id.
"""

from pathlib import Path

from repro.analysis.staticcheck import csrc
from repro.analysis.staticcheck.cboundary import check_cboundary
from repro.analysis.staticcheck.cboundary_manifest import C_SOURCE

REPO_ROOT = Path(__file__).resolve().parents[1]
ENGINE_C = REPO_ROOT / C_SOURCE


# ----------------------------------------------------------------------
# csrc: the minimal C tokenizer
# ----------------------------------------------------------------------


def test_tokenize_strips_comments_and_preprocessor():
    tokens = csrc.tokenize(
        """
#include <stdio.h>
// line comment with "a string"
int x = 1; /* block
   comment */ int y = 2;
"""
    )
    texts = [t.text for t in tokens]
    assert texts == ["int", "x", "=", "1", ";", "int", "y", "=", "2", ";"]


def test_tokenize_string_and_char_literals():
    tokens = csrc.tokenize('char c = \'x\'; const char *s = "a\\nb";')
    kinds = {t.text: t.kind for t in tokens if t.kind in ("str", "char")}
    assert kinds == {"x": "char", "a\nb": "str"}


def test_merge_adjacent_strings():
    tokens = csrc.merge_adjacent_strings(csrc.tokenize('f("one " "two", ";");'))
    assert [t.text for t in tokens if t.kind == "str"] == ["one two", ";"]


def test_table_entries_reads_first_string_of_each_entry():
    tokens = csrc.tokenize(
        """
static PyMethodDef Demo_methods[] = {
    {"alpha", (PyCFunction)f, METH_NOARGS, "doc"},
    {"beta", (PyCFunction)g, METH_VARARGS, "doc"},
    {NULL, NULL, 0, NULL},
};
"""
    )
    entries = csrc.table_entries(tokens, "Demo_methods")
    assert [t.text for t in entries] == ["alpha", "beta"]
    assert csrc.table_entries(tokens, "Missing_table") is None


def test_interned_strings_and_assignment_expr():
    tokens = csrc.tokenize(
        """
static int setup(void) {
    str_phi = PyUnicode_InternFromString("phi");
    str_S = PyUnicode_InternFromString("S");
    return 0;
}
static double f(double phi, double S, double v) {
    double alpha = phi * (S - v);
    return alpha;
}
"""
    )
    assert [t.text for t in csrc.interned_strings(tokens)] == ["phi", "S"]
    body = csrc.function_body(tokens, "f")
    assert body is not None
    expr = csrc.assignment_expr(body, "alpha")
    assert csrc.expr_text(expr) == "phi*(S-v)"


def test_function_body_skips_declarations_and_calls():
    tokens = csrc.tokenize(
        """
static double f(double x);
int main(void) { return f(1.0); }
static double f(double x) { return x + 1; }
"""
    )
    body = csrc.function_body(tokens, "f")
    assert csrc.expr_text(body) == "returnx+1;"


# ----------------------------------------------------------------------
# the real repo conforms
# ----------------------------------------------------------------------


def test_real_engine_c_conforms_to_manifest():
    assert ENGINE_C.is_file(), "compiled engine source moved; update manifest"
    assert check_cboundary(REPO_ROOT) == []


# ----------------------------------------------------------------------
# fault injection on a mutated copy of _engine.c
# ----------------------------------------------------------------------


def _mutated(tmp_path, transform):
    source = ENGINE_C.read_text(encoding="utf-8")
    mutated = transform(source)
    assert mutated != source, "mutation did not apply; anchors moved"
    c_copy = tmp_path / "_engine_mut.c"
    c_copy.write_text(mutated, encoding="utf-8")
    return check_cboundary(REPO_ROOT, c_path=c_copy)


def test_counter_rename_is_flagged(tmp_path):
    found = _mutated(
        tmp_path, lambda s: s.replace('"comparisons"', '"comparison_count"')
    )
    assert {v.rule for v in found} == {"SFS011"}
    messages = " | ".join(v.message for v in found)
    assert "comparisons" in messages
    assert "comparison_count" in messages


def test_alpha_operand_swap_is_flagged(tmp_path):
    found = _mutated(
        tmp_path, lambda s: s.replace("phi * (S - v)", "(S - v) * phi")
    )
    assert [v.rule for v in found] == ["SFS011"]
    assert "(S-v)*phi" in found[0].message
    assert "FloatTags.surplus" in found[0].message


def test_dropped_mirrored_method_is_flagged(tmp_path):
    def drop_run_until(source):
        lines = [
            line
            for line in source.splitlines(keepends=True)
            if '{"run_until"' not in line
        ]
        return "".join(lines)

    found = _mutated(tmp_path, drop_run_until)
    assert [v.rule for v in found] == ["SFS010"]
    assert "run_until" in found[0].message
    assert "Engine_methods" in found[0].message


def test_stale_slot_offset_is_flagged(tmp_path):
    found = _mutated(
        tmp_path, lambda s: s.replace('"_cached_key"', '"_cached"')
    )
    assert {v.rule for v in found} == {"SFS011"}
    assert any("_cached_key" in v.message for v in found)


def test_undeclared_extra_method_is_flagged(tmp_path):
    extra = (
        '    {"warp", (PyCFunction)Engine_run, METH_VARARGS, "undeclared"},\n'
    )
    found = _mutated(
        tmp_path,
        lambda s: s.replace(
            'static PyMethodDef Engine_methods[] = {\n',
            "static PyMethodDef Engine_methods[] = {\n" + extra,
        ),
    )
    assert [v.rule for v in found] == ["SFS010"]
    assert "warp" in found[0].message
    assert "undeclared" in found[0].message


def test_exception_message_drift_is_flagged(tmp_path):
    found = _mutated(
        tmp_path,
        lambda s: s.replace(
            '"cannot schedule event in the past: "',
            '"cannot schedule an event in the past: "',
        ),
    )
    assert {v.rule for v in found} == {"SFS011"}
    assert any("cannot schedule" in v.message for v in found)


def test_missing_c_source_is_blocking(tmp_path):
    found = check_cboundary(REPO_ROOT, c_path=tmp_path / "nope.c")
    assert found and all(v.rule == "SFS010" for v in found)


def test_violations_are_sorted_and_deduped(tmp_path):
    found = _mutated(
        tmp_path, lambda s: s.replace('"comparisons"', '"comparison_count"')
    )
    keys = [(v.path, v.line, v.col, v.rule, v.message) for v in found]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))
