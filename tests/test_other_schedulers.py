"""Tests for stride, lottery, WFQ, BVT, round-robin and GMS-reference."""

import pytest

from tests.conftest import add_inf
from repro.schedulers.bvt import BorrowedVirtualTimeScheduler
from repro.schedulers.gms_reference import GMSReferenceScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.wfq import WeightedFairQueueingScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite


def run_shares(scheduler, weights, cpus=1, horizon=20.0, quantum=0.1):
    m = Machine(scheduler, cpus=cpus, quantum=quantum)
    tasks = [add_inf(m, w, f"w{w}-{i}") for i, w in enumerate(weights)]
    m.run_until(horizon)
    total = sum(t.service for t in tasks)
    return [t.service / total for t in tasks]


class TestStride:
    def test_uniprocessor_proportionality(self):
        shares = run_shares(StrideScheduler(), [1, 3])
        assert shares[1] == pytest.approx(0.75, abs=0.05)

    def test_infeasible_weights_without_readjustment_starve(self):
        # Same pathology as SFQ: [1, 10] on 2 CPUs with a third arrival.
        m = Machine(StrideScheduler(), cpus=2, quantum=0.01)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=5.0)
        m.run_until(7.0)
        from repro.sim.metrics import service_between

        assert service_between(t1, 5.0, 6.5) < 0.2

    def test_readjustment_restores_fairness(self):
        m = Machine(StrideScheduler(readjust=True), cpus=2, quantum=0.01)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=5.0)
        m.run_until(7.0)
        from repro.sim.metrics import service_between

        assert service_between(t1, 5.0, 7.0) > 0.6

    def test_full_stride_charged_even_for_partial_quantum(self):
        # Classic stride over-charges blockers (unlike SFQ/SFS).
        sched = StrideScheduler()
        m = Machine(sched, cpus=1, quantum=0.2)
        t = add_inf(m, 1, "t")
        m.run_until(0.05)
        before = t.sched["pass"]
        sched.on_block(t, 0.05, 0.01)  # ran 10 ms only
        from repro.schedulers.stride import STRIDE1

        assert t.sched["pass"] - before == pytest.approx(STRIDE1)


class TestLottery:
    def test_statistical_proportionality(self):
        shares = run_shares(
            LotteryScheduler(seed=1), [1, 4], horizon=60.0, quantum=0.05
        )
        assert shares[1] == pytest.approx(0.8, abs=0.06)

    def test_deterministic_given_seed(self):
        a = run_shares(LotteryScheduler(seed=3), [1, 2, 3], horizon=5.0)
        b = run_shares(LotteryScheduler(seed=3), [1, 2, 3], horizon=5.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = run_shares(LotteryScheduler(seed=3), [1, 2, 3], horizon=5.0)
        b = run_shares(LotteryScheduler(seed=4), [1, 2, 3], horizon=5.0)
        assert a != b


class TestRoundRobin:
    def test_equal_shares_regardless_of_weights(self):
        shares = run_shares(RoundRobinScheduler(), [1, 10])
        assert shares[0] == pytest.approx(0.5, abs=0.05)

    def test_rotation_order_is_fifo(self):
        sched = RoundRobinScheduler()
        m = Machine(sched, cpus=1, quantum=0.1)
        for i in range(3):
            add_inf(m, 1, f"T{i}")
        picks = []
        orig = sched.pick_next

        def spy(cpu, now):
            t = orig(cpu, now)
            if t is not None:
                picks.append(t.name)
            return t

        sched.pick_next = spy
        m.run_until(0.95)
        assert picks[:6] == ["T0", "T1", "T2", "T0", "T1", "T2"]


class TestWFQ:
    def test_uniprocessor_proportionality(self):
        shares = run_shares(WeightedFairQueueingScheduler(), [1, 3])
        assert shares[1] == pytest.approx(0.75, abs=0.08)

    def test_readjust_variant_has_distinct_name(self):
        assert WeightedFairQueueingScheduler(readjust=True).name == "WFQ+readjust"

    def test_nominal_quantum_defaults_to_machine(self):
        sched = WeightedFairQueueingScheduler()
        Machine(sched, cpus=1, quantum=0.37)
        assert sched.nominal_quantum == pytest.approx(0.37)


class TestBVT:
    def test_zero_warp_equals_sfq_decisions(self):
        """The paper: "BVT reduces to SFQ when the latency parameter is
        set to zero"."""

        def decisions(scheduler):
            m = Machine(scheduler, cpus=1, quantum=0.2)
            for i, w in enumerate((1, 2, 3)):
                add_inf(m, w, f"w{w}-{i}")
            picks = []
            orig = scheduler.pick_next

            def spy(cpu, now):
                t = orig(cpu, now)
                if t is not None:
                    picks.append(t.name)
                return t

            scheduler.pick_next = spy
            m.run_until(6.0)
            return picks

        assert decisions(BorrowedVirtualTimeScheduler()) == decisions(
            StartTimeFairScheduler()
        )

    def test_warped_thread_gets_priority_on_wakeup(self):
        from repro.sim.events import Block, Run
        from repro.workloads.base import GeneratorBehavior

        sched = BorrowedVirtualTimeScheduler()
        m = Machine(sched, cpus=1, quantum=0.2)

        def gen():
            while True:
                yield Block(0.5)
                yield Run(0.01)

        latency_sensitive = m.add_task(
            Task(GeneratorBehavior(gen()), weight=1, name="ls")
        )
        sched.set_warp(latency_sensitive, warp=2.0)
        add_inf(m, 1, "hog")
        m.run_until(10.0)
        # Every wakeup should be served promptly: ~19 bursts of 10 ms.
        assert latency_sensitive.service == pytest.approx(0.19, abs=0.05)

    def test_warp_must_be_nonnegative(self):
        sched = BorrowedVirtualTimeScheduler()
        with pytest.raises(ValueError):
            sched.set_warp(Task(Infinite(), weight=1), -1.0)


class TestGMSReference:
    def test_proportional_on_multiprocessor(self):
        shares = run_shares(
            GMSReferenceScheduler(), [1, 2, 1], cpus=2, horizon=20.0, quantum=0.2
        )
        assert shares[1] == pytest.approx(0.5, abs=0.05)

    def test_infeasible_weight_capped(self):
        m = Machine(GMSReferenceScheduler(), cpus=2, quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 100, "B")
        m.run_until(10.0)
        assert b.service == pytest.approx(10.0, abs=0.5)
        assert a.service == pytest.approx(10.0, abs=0.5)

    def test_deficits_go_negative(self):
        # Unlike Eq. 4, the true surplus admits deficits.
        sched = GMSReferenceScheduler()
        m = Machine(sched, cpus=1, quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(0.3)
        surpluses = [sched.surplus_of(t, m.now) for t in (a, b)]
        assert min(surpluses) < -0.05
