"""Unit tests for the §2.1 weight readjustment algorithm."""

import pytest

from repro.core.weights import (
    is_feasible,
    readjust,
    readjust_sorted,
    readjust_sorted_iterative,
    readjust_tasks,
    violators,
)
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite


class TestFeasibility:
    def test_equal_weights_feasible_on_two_cpus(self):
        assert is_feasible([1, 1, 1], 2)

    def test_paper_example1_weights_infeasible(self):
        # Example 1: w=10 on a dual-processor requests 10/11 > 1/2.
        assert not is_feasible([1, 10], 2)

    def test_paper_feasible_becomes_infeasible_when_thread_blocks(self):
        # §1.2: "a feasible weight assignment of 1:1:2 on a dual-processor
        # server becomes infeasible when one of the threads with weight 1
        # blocks."
        assert is_feasible([1, 1, 2], 2)
        assert not is_feasible([1, 2], 2)

    def test_boundary_share_is_feasible(self):
        # Exactly 1/p is allowed by Eq. 1 (<=).
        assert is_feasible([2, 1, 1], 2)

    def test_uniprocessor_always_feasible(self):
        assert is_feasible([1000, 1, 1], 1)

    def test_single_thread_on_multiprocessor_infeasible(self):
        # With t < p the average share exceeds 1/p; Eq. 1 cannot hold.
        assert not is_feasible([5], 2)

    def test_empty_assignment_feasible(self):
        assert is_feasible([], 4)

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            is_feasible([1], 0)

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            is_feasible([0, 0], 2)


class TestViolators:
    def test_violator_indices(self):
        assert violators([1, 10], 2) == [1]

    def test_no_violators_when_feasible(self):
        assert violators([1, 1, 1, 1], 2) == []

    def test_at_most_p_minus_1_violators(self):
        # §2.1: fewer than p threads can request > 1/p.
        for p in (2, 3, 4, 8):
            weights = [100.0] * 3 + [1.0] * 50
            assert len(violators(weights, p)) <= p - 1


class TestReadjustSorted:
    def test_example1_dual_processor(self):
        # [10, 1] on 2 CPUs: thread 1 capped so its share is exactly 1/2.
        assert readjust_sorted([10, 1], 2) == [1.0, 1.0]

    def test_three_threads_one_infeasible(self):
        assert readjust_sorted([10, 1, 1], 2) == [2.0, 1.0, 1.0]

    def test_cascading_adjustment(self):
        # Both 10 and 5 violate on 3 CPUs; all collapse to equal shares.
        assert readjust_sorted([10, 5, 1], 3) == [1.0, 1.0, 1.0]

    def test_feasible_input_unchanged(self):
        w = [3.0, 2.0, 2.0, 1.0]
        assert readjust_sorted(w, 2) == w

    def test_adjusted_thread_share_is_exactly_one_over_p(self):
        out = readjust_sorted([100, 10, 1, 1], 2)
        total = sum(out)
        assert out[0] / total == pytest.approx(0.5)

    def test_unadjusted_tail_preserved(self):
        out = readjust_sorted([100, 10, 1, 1], 2)
        assert out[1:] == [10.0, 1.0, 1.0]

    def test_t_equals_p_with_infeasible_head(self):
        assert readjust_sorted([10, 1], 2) == [1.0, 1.0]

    def test_fewer_threads_than_processors_equalized(self):
        # t < p: every thread holds a full CPU; phis equalize.
        assert readjust_sorted([5, 3], 4) == [4.0, 4.0]

    def test_single_thread(self):
        assert readjust_sorted([7], 2) == [7.0]

    def test_empty(self):
        assert readjust_sorted([], 2) == []

    def test_rejects_unsorted_input(self):
        with pytest.raises(ValueError):
            readjust_sorted([1, 10], 2)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            readjust_sorted([1, -1], 2)

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            readjust_sorted([1], 0)


class TestReadjustArbitraryOrder:
    def test_scatter_back_to_original_positions(self):
        assert readjust([1, 10], 2) == [1.0, 1.0]
        assert readjust([1, 10, 1], 2) == [1.0, 2.0, 1.0]

    def test_equal_weights_map_to_equal_outputs(self):
        out = readjust([5, 1, 5, 1], 2)
        assert out[0] == out[2]
        assert out[1] == out[3]

    def test_iterative_matches_recursive(self):
        cases = [
            ([10, 1], 2),
            ([10, 5, 1], 3),
            ([100, 10, 1, 1], 2),
            ([7, 7, 7], 3),
            ([50, 40, 30, 20, 10], 4),
            ([9, 8, 7, 6, 5, 4, 3, 2, 1], 3),
        ]
        for w, p in cases:
            assert readjust_sorted(w, p) == pytest.approx(
                readjust_sorted_iterative(w, p)
            )


class TestReadjustTasks:
    def _tasks(self, weights):
        return [Task(Infinite(), weight=w) for w in weights]

    def test_phi_updated_weight_untouched(self):
        tasks = self._tasks([10, 1])
        changed = readjust_tasks(tasks, 2)
        assert tasks[0].phi == 1.0
        assert tasks[0].weight == 10.0  # user weight never modified
        assert tasks[0] in changed

    def test_unchanged_tasks_not_reported(self):
        tasks = self._tasks([1, 1])
        assert readjust_tasks(tasks, 2) == []

    def test_empty_task_list(self):
        assert readjust_tasks([], 2) == []

    def test_phi_restored_when_assignment_becomes_feasible(self):
        tasks = self._tasks([10, 1])
        readjust_tasks(tasks, 2)
        assert tasks[0].phi == 1.0
        # A third thread makes 10 less dominant but still infeasible;
        # then many more threads make it feasible again.
        tasks += self._tasks([1] * 20)
        readjust_tasks(tasks, 2)
        assert tasks[0].phi == 10.0  # 10/31 < 1/2: feasible again
