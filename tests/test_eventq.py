"""Equivalence tests pinning the calendar queue to the heap oracle.

The engine's one ordering guarantee — events fire in ascending
``(time, seq)`` order — must hold identically across every queue and
engine build: the reference binary heap, the pure-Python calendar
queue, and the compiled C engine. These tests drive all of them with
the same randomized schedules (same-timestamp bursts, cancellations,
reentrant scheduling from callbacks) and require bit-identical fire
logs, clocks and counters. A divergence here means simulations would
stop being reproducible across builds, which is the repository's
ground rule.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import PyEngine
from repro.sim.eventq import EVENT_QUEUES, make_event_queue

try:
    from repro.sim import _engine as compiled_engine
except ImportError:  # pragma: no cover - pure-python environments
    compiled_engine = None

needs_compiled = pytest.mark.skipif(
    compiled_engine is None,
    reason="repro.sim._engine extension not built "
    "(python setup.py build_ext --inplace)",
)


# ----------------------------------------------------------------------
# scripted engine driver: one program, many engines
# ----------------------------------------------------------------------

#: a program is a list of ops executed in order against a fresh engine;
#: times are offsets *from the current clock* so every op stays legal.
#: ("at", dt, cancel_idx_or_None)  schedule at now+dt, maybe cancelling
#:                                 the handle scheduled by op cancel_idx
#: ("run_until", dt)               advance the clock by dt
#: ("step",)                       fire a single event
#: ("run", max_or_None)            drain (optionally bounded)
_op = st.one_of(
    st.tuples(
        st.just("at"),
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=16),
        st.none() | st.integers(min_value=0, max_value=30),
    ),
    st.tuples(
        st.just("run_until"),
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=16),
    ),
    st.tuples(st.just("step")),
    st.tuples(st.just("run"), st.none() | st.integers(0, 8)),
)

programs = st.lists(_op, min_size=1, max_size=40)


def execute(engine, program):
    """Run ``program`` against ``engine``; return the observable log.

    Fired events record ``(sim-time, event-tag)``; after every op the
    clock and both counters are appended too, so any divergence in
    *when* state changes — not just in the final state — fails.
    """
    log: list = []
    handles: dict[int, object] = {}

    def fire(tag):
        log.append(("fire", engine.now, tag))
        # reentrancy: every third event schedules a same-time follow-up,
        # landing in a fresh bucket that must fire in the same pass
        if tag % 3 == 0 and tag < 900:
            handles[1000 + tag] = engine.schedule_at(
                engine.now, fire, 1000 + tag
            )

    for idx, op in enumerate(program):
        if op[0] == "at":
            _, dt, cancel_idx = op
            handles[idx] = engine.schedule_at(engine.now + dt, fire, idx)
            if cancel_idx is not None and cancel_idx in handles:
                handles[cancel_idx].cancel()
        elif op[0] == "run_until":
            engine.run_until(engine.now + op[1])
        elif op[0] == "step":
            log.append(("stepped", engine.step()))
        else:
            log.append(("ran", engine.run(op[1])))
        log.append(("state", engine.now, engine.pending, engine.events_fired))
    log.append(("final", engine.run(), engine.now, engine.events_fired))
    return log


class TestQueueEquivalence:
    @given(programs)
    @settings(max_examples=200, deadline=None)
    def test_calendar_matches_heap(self, program):
        calendar = execute(PyEngine(queue="calendar"), program)
        heap = execute(PyEngine(queue="heap"), program)
        assert calendar == heap

    @needs_compiled
    @given(programs)
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_pure(self, program):
        pure = execute(PyEngine(queue="calendar"), program)
        c = execute(compiled_engine.Engine(), program)
        assert c == pure

    def test_same_timestamp_burst_fires_in_seq_order(self):
        """A thousand events at one timestamp drain as one batch, FIFO."""
        engines = [PyEngine(queue="calendar"), PyEngine(queue="heap")]
        if compiled_engine is not None:
            engines.append(compiled_engine.Engine())
        for engine in engines:
            fired = []
            for i in range(1000):
                engine.schedule_at(1.0, fired.append, i)
            engine.run_until(1.0)
            assert fired == list(range(1000))
            assert engine.now == 1.0
            assert engine.pending == 0

    def test_interleaved_cancellation_burst(self):
        """Cancel every other event in a burst; survivors keep order."""
        engines = [PyEngine(queue="calendar"), PyEngine(queue="heap")]
        if compiled_engine is not None:
            engines.append(compiled_engine.Engine())
        for engine in engines:
            fired = []
            handles = [
                engine.schedule_at(2.0, fired.append, i) for i in range(100)
            ]
            for h in handles[::2]:
                h.cancel()
            assert engine.pending == 50
            engine.run()
            assert fired == list(range(1, 100, 2))
            # cancelling an already-fired handle must not corrupt counters
            handles[1].cancel()
            assert engine.pending == 0


class TestQueueContract:
    """Direct pop-level checks on the queue implementations."""

    @pytest.mark.parametrize("kind", sorted(EVENT_QUEUES))
    def test_pop_due_respects_bound(self, kind):
        engine = PyEngine(queue=kind)
        queue = engine._queue
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert queue.pop_due(0.5) is None
        first = queue.pop_due(1.5)
        assert first is not None and first.time == 1.0
        assert queue.pop_due(1.5) is None

    @pytest.mark.parametrize("kind", sorted(EVENT_QUEUES))
    def test_pop_batch_skips_fully_cancelled_buckets(self, kind):
        engine = PyEngine(queue=kind)
        queue = engine._queue
        doomed = [engine.schedule_at(1.0, lambda: None) for _ in range(3)]
        keeper = engine.schedule_at(2.0, lambda: None)
        for h in doomed:
            h.cancel()
        batch = queue.pop_batch_due(math.inf)
        assert batch is not None
        assert keeper in batch

    @pytest.mark.parametrize("kind", sorted(EVENT_QUEUES))
    def test_requeue_restores_tail(self, kind):
        engine = PyEngine(queue=kind)
        queue = engine._queue
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(1.0, lambda: None)
        batch = queue.pop_batch_due(math.inf)
        assert len(batch) == 2
        queue.requeue(batch[1:], 1.0)
        again = queue.pop_batch_due(math.inf)
        assert again == batch[1:]

    def test_make_event_queue_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown event queue"):
            make_event_queue("wheel-of-fortune")


class TestExceptionSemantics:
    """A raising callback must leave the engine resumable."""

    def _engines(self):
        engines = [PyEngine(queue="calendar"), PyEngine(queue="heap")]
        if compiled_engine is not None:
            engines.append(compiled_engine.Engine())
        return engines

    def test_exception_mid_batch_preserves_tail(self):
        for engine in self._engines():
            fired = []

            def boom():
                raise RuntimeError("boom")

            engine.schedule_at(1.0, fired.append, "before")
            engine.schedule_at(1.0, boom)
            engine.schedule_at(1.0, fired.append, "after")
            engine.schedule_at(2.0, fired.append, "later")
            with pytest.raises(RuntimeError):
                engine.run_until(3.0)
            # the raising event was consumed; the tail was not
            assert fired == ["before"]
            assert engine.pending == 2
            engine.run_until(3.0)
            assert fired == ["before", "after", "later"]
            assert engine.pending == 0


@needs_compiled
class TestCompiledSurface:
    """Pin the C engine's validation/API parity with PyEngine."""

    def test_rejects_past_and_nan(self):
        engine = compiled_engine.Engine()
        engine.run_until(5.0)
        with pytest.raises(ValueError, match="in the past"):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError, match="in the past"):
            engine.schedule_at(math.nan, lambda: None)
        with pytest.raises(ValueError, match="delay must be"):
            engine.schedule_after(-0.5, lambda: None)
        with pytest.raises(ValueError, match="in the past"):
            engine.run_until(1.0)

    def test_takes_no_constructor_args(self):
        with pytest.raises(TypeError):
            compiled_engine.Engine(queue="heap")

    def test_handle_surface(self):
        engine = compiled_engine.Engine()
        seen = []
        h = engine.schedule_at(1.5, seen.append, 7)
        assert h.time == 1.5
        assert h.seq == 0
        assert h.args == (7,)
        assert not h.cancelled
        h2 = engine.schedule_at(1.5, seen.append, 8)
        assert h < h2 and not (h2 < h)
        h.cancel()
        assert h.cancelled
        h.cancel()  # idempotent
        assert engine.pending == 1

    def test_sfs_recompute_matches_pure(self):
        """The C Eq. 4 loop is bit-identical to FloatTags.surplus."""
        from repro.core.fixed_point import FloatTags
        from repro.sim.events import Run
        from repro.sim.task import Task

        tags = FloatTags()
        tasks = []
        for i in range(50):
            task = Task(behavior=[Run(1.0)], weight=1 + i % 7)
            task.phi = 0.1 + (i % 11) / 7.0
            task.sched["S"] = i / 3.0
            tasks.append(task)
        v = 2.5
        keys, out_tasks, cached = compiled_engine.sfs_recompute(tasks, v)
        expected = sorted(
            ((tags.surplus(t.phi, t.sched["S"], v), t.tid), t) for t in tasks
        )
        assert keys == [k for k, _ in expected]
        assert out_tasks == [t for _, t in expected]
        assert cached == {t.tid: k for k, t in expected}
        for t in tasks:
            assert t.sched["alpha"] == tags.surplus(t.phi, t.sched["S"], v)
