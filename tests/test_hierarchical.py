"""Tests for the §5 hierarchical SFS extension and water-filling."""

import math

import pytest

from tests.conftest import add_inf
from repro.core.hierarchical import HierarchicalSurplusFairScheduler
from repro.core.weights import waterfill_shares
from repro.sim.events import Block, Run
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import GeneratorBehavior
from repro.workloads.cpu_bound import Infinite


class TestWaterfill:
    def test_uncapped_is_proportional(self):
        assert waterfill_shares([1, 3], [1.0, 1.0]) == pytest.approx([0.25, 0.75])

    def test_single_cap_redistributes(self):
        # Entity 2 wants 0.75 but is capped at 0.5; entity 1 gets the rest.
        assert waterfill_shares([1, 3], [1.0, 0.5]) == pytest.approx([0.5, 0.5])

    def test_readjustment_special_case(self):
        # Caps of 1/p reproduce the §2.1 algorithm's shares.
        shares = waterfill_shares([10, 1, 1], [0.5, 0.5, 0.5])
        assert shares == pytest.approx([0.5, 0.25, 0.25])

    def test_cascading_caps(self):
        shares = waterfill_shares([8, 4, 1], [0.4, 0.4, 1.0])
        assert shares[0] == pytest.approx(0.4)
        assert shares[1] == pytest.approx(0.4)
        assert shares[2] == pytest.approx(0.2)

    def test_sum_of_caps_below_one_leaves_slack(self):
        shares = waterfill_shares([1, 1], [0.3, 0.3])
        assert shares == pytest.approx([0.3, 0.3])

    def test_validation(self):
        with pytest.raises(ValueError):
            waterfill_shares([1], [0.5, 0.5])
        with pytest.raises(ValueError):
            waterfill_shares([0], [0.5])
        with pytest.raises(ValueError):
            waterfill_shares([1], [0.0])


def hier_machine(cpus=2, quantum=0.1):
    sched = HierarchicalSurplusFairScheduler()
    machine = Machine(sched, cpus=cpus, quantum=quantum)
    return machine, sched


class TestClassConfiguration:
    def test_duplicate_class_rejected(self):
        _, sched = hier_machine()
        sched.add_class("a", 1)
        with pytest.raises(ValueError):
            sched.add_class("a", 2)

    def test_bad_weight_and_policy_rejected(self):
        _, sched = hier_machine()
        with pytest.raises(ValueError):
            sched.add_class("x", 0)
        with pytest.raises(ValueError):
            sched.add_class("y", 1, policy="cfs")

    def test_assign_unknown_class_rejected(self):
        _, sched = hier_machine()
        with pytest.raises(ValueError):
            sched.assign(Task(Infinite(), weight=1), "ghost")

    def test_unassigned_tasks_get_default_class(self):
        machine, sched = hier_machine(cpus=1)
        t = add_inf(machine, 1, "solo")
        machine.run_until(1.0)
        assert sched.class_of(t).name == "default"
        assert t.service == pytest.approx(1.0)


class TestClassShares:
    def test_two_classes_share_by_class_weight(self):
        machine, sched = hier_machine(cpus=1)
        sched.add_class("gold", 3)
        sched.add_class("bronze", 1)
        gold_tasks = []
        for i in range(2):
            t = Task(Infinite(), weight=1, name=f"g{i}")
            sched.assign(t, "gold")
            gold_tasks.append(machine.add_task(t))
        bronze_tasks = []
        for i in range(2):
            t = Task(Infinite(), weight=1, name=f"b{i}")
            sched.assign(t, "bronze")
            bronze_tasks.append(machine.add_task(t))
        machine.run_until(20.0)
        gold = sum(t.service for t in gold_tasks)
        bronze = sum(t.service for t in bronze_tasks)
        assert gold / (gold + bronze) == pytest.approx(0.75, abs=0.05)

    def test_class_share_independent_of_member_count(self):
        # The §5 rationale: 10 threads in one class must not drown a
        # 2-thread class of equal class weight.
        machine, sched = hier_machine(cpus=1)
        sched.add_class("many", 1)
        sched.add_class("few", 1)
        many, few = [], []
        for i in range(10):
            t = Task(Infinite(), weight=1, name=f"m{i}")
            sched.assign(t, "many")
            many.append(machine.add_task(t))
        for i in range(2):
            t = Task(Infinite(), weight=1, name=f"f{i}")
            sched.assign(t, "few")
            few.append(machine.add_task(t))
        machine.run_until(20.0)
        assert sum(t.service for t in many) == pytest.approx(10.0, abs=1.0)
        assert sum(t.service for t in few) == pytest.approx(10.0, abs=1.0)

    def test_single_member_class_capped_at_one_cpu(self):
        # A class with one runnable member cannot use both CPUs no
        # matter how large its weight (the n_c/p cap).
        machine, sched = hier_machine(cpus=2)
        sched.add_class("whale", 100)
        sched.add_class("minnows", 1)
        whale = Task(Infinite(), weight=1, name="whale")
        sched.assign(whale, "whale")
        machine.add_task(whale)
        minnows = []
        for i in range(4):
            t = Task(Infinite(), weight=1, name=f"min{i}")
            sched.assign(t, "minnows")
            minnows.append(machine.add_task(t))
        machine.run_until(10.0)
        assert whale.service == pytest.approx(10.0, abs=0.5)
        assert sum(t.service for t in minnows) == pytest.approx(10.0, abs=0.5)

    def test_within_class_weights_respected_by_sfq_policy(self):
        machine, sched = hier_machine(cpus=1)
        sched.add_class("c", 1)
        heavy = Task(Infinite(), weight=3, name="heavy")
        light = Task(Infinite(), weight=1, name="light")
        sched.assign(heavy, "c")
        sched.assign(light, "c")
        machine.add_task(heavy)
        machine.add_task(light)
        machine.run_until(20.0)
        assert heavy.service / 20.0 == pytest.approx(0.75, abs=0.05)

    def test_rr_policy_ignores_member_weights(self):
        machine, sched = hier_machine(cpus=1)
        sched.add_class("c", 1, policy="rr")
        heavy = Task(Infinite(), weight=3, name="heavy")
        light = Task(Infinite(), weight=1, name="light")
        sched.assign(heavy, "c")
        sched.assign(light, "c")
        machine.add_task(heavy)
        machine.add_task(light)
        machine.run_until(20.0)
        assert heavy.service == pytest.approx(light.service, rel=0.15)


class TestClassDynamics:
    def test_idle_class_does_not_bank_credit(self):
        machine, sched = hier_machine(cpus=1)
        sched.add_class("sleepy", 1)
        sched.add_class("busy", 1)

        def gen():
            yield Run(0.05)
            yield Block(5.0)
            yield Run(math.inf)

        sleeper = Task(GeneratorBehavior(gen()), weight=1, name="sleeper")
        sched.assign(sleeper, "sleepy")
        machine.add_task(sleeper)
        hog = Task(Infinite(), weight=1, name="hog")
        sched.assign(hog, "busy")
        machine.add_task(hog)
        machine.run_until(5.0)
        hog_before = hog.service
        machine.run_until(9.0)
        # After waking, the classes split 1:1 — no catch-up burst.
        assert hog.service - hog_before == pytest.approx(2.0, abs=0.4)

    def test_class_goes_inactive_when_members_block(self):
        machine, sched = hier_machine(cpus=1)
        cls = sched.add_class("c", 1)

        def gen():
            yield Run(0.05)
            yield Block(10.0)
            yield Run(math.inf)

        t = Task(GeneratorBehavior(gen()), weight=1, name="t")
        sched.assign(t, "c")
        machine.add_task(t)
        add_inf(machine, 1, "bg")  # default class keeps the CPU busy
        machine.run_until(1.0)
        assert not cls.active
        machine.run_until(11.0)
        assert cls.active

    def test_work_conserving(self):
        sched = HierarchicalSurplusFairScheduler()
        machine = Machine(sched, cpus=2, quantum=0.1,
                          check_work_conserving=True)
        sched.add_class("a", 2)
        sched.add_class("b", 1)
        for i in range(3):
            t = Task(Infinite(), weight=1, name=f"a{i}")
            sched.assign(t, "a")
            machine.add_task(t)
        t = Task(Infinite(), weight=1, name="b0")
        sched.assign(t, "b")
        machine.add_task(t)
        machine.run_until(5.0)  # must not raise

    def test_full_utilization(self):
        machine, sched = hier_machine(cpus=2)
        sched.add_class("a", 5)
        tasks = []
        for i in range(4):
            t = Task(Infinite(), weight=1, name=f"t{i}")
            sched.assign(t, "a")
            tasks.append(machine.add_task(t))
        machine.run_until(6.0)
        assert sum(t.service for t in tasks) == pytest.approx(12.0)
