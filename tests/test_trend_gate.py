"""Unit tests for the CI perf-trend gate (repro.analysis.trend).

The acceptance contract: a synthetic 2x-slower BENCH_scale.json is
flagged, the unchanged one passes, vanished cells fail, and the
--update-baseline path round-trips through the compact baseline file.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis.trend import (
    compare,
    dump_baseline,
    extract_cells,
    load_baseline,
    to_markdown,
)


def bench_json(cells):
    """Fake pytest-benchmark report with one entry per (sched, n, evps)."""
    return {
        "benchmarks": [
            {
                "name": f"test_server_scale_events_per_sec[{n}-{sched}]",
                "extra_info": {
                    "scheduler": sched,
                    "n_tasks": n,
                    "events": 1000 * n,
                    "events_per_sec": evps,
                },
            }
            for sched, n, evps in cells
        ]
    }


GRID = [("sfs", 100, 40000.0), ("sfs", 5000, 30000.0), ("sfq", 100, 80000.0)]


class TestExtract:
    def test_extracts_keyed_cells(self):
        cells = extract_cells(bench_json(GRID))
        assert set(cells) == {("sfs", 100), ("sfs", 5000), ("sfq", 100)}
        assert cells[("sfs", 5000)].events_per_sec == 30000.0
        assert cells[("sfs", 5000)].events == 5_000_000

    def test_ignores_non_grid_benchmarks(self):
        report = bench_json(GRID)
        report["benchmarks"].append({"name": "test_fig1", "extra_info": {}})
        assert len(extract_cells(report)) == len(GRID)


class TestCompare:
    def test_identical_run_passes(self):
        cells = extract_cells(bench_json(GRID))
        report = compare(cells, cells)
        assert report.ok
        assert all(row.status == "ok" for row in report.rows)

    def test_synthetic_2x_regression_is_flagged(self):
        baseline = extract_cells(bench_json(GRID))
        slowed = [
            (sched, n, evps / 2.1 if (sched, n) == ("sfs", 5000) else evps)
            for sched, n, evps in GRID
        ]
        report = compare(baseline, extract_cells(bench_json(slowed)))
        assert not report.ok
        assert [row.key for row in report.regressions] == [("sfs", 5000)]

    def test_regression_within_threshold_passes(self):
        baseline = extract_cells(bench_json(GRID))
        slowed = [(sched, n, evps / 1.9) for sched, n, evps in GRID]
        assert compare(baseline, extract_cells(bench_json(slowed))).ok

    def test_missing_cell_fails(self):
        baseline = extract_cells(bench_json(GRID))
        fresh = extract_cells(bench_json(GRID[:-1]))
        report = compare(baseline, fresh)
        assert not report.ok
        assert report.regressions[0].status == "missing"

    def test_new_cell_is_informational(self):
        baseline = extract_cells(bench_json(GRID[:-1]))
        report = compare(baseline, extract_cells(bench_json(GRID)))
        assert report.ok
        assert any(row.status == "new" for row in report.rows)

    def test_improvement_is_labelled(self):
        baseline = extract_cells(bench_json(GRID))
        faster = [(sched, n, evps * 3) for sched, n, evps in GRID]
        report = compare(baseline, extract_cells(bench_json(faster)))
        assert report.ok
        assert all(row.status == "improved" for row in report.rows)

    def test_event_count_drift_is_reported(self):
        baseline = extract_cells(bench_json(GRID))
        drifted = bench_json(GRID)
        drifted["benchmarks"][0]["extra_info"]["events"] += 7
        report = compare(baseline, extract_cells(drifted))
        assert report.ok  # drift warns, only slowness gates
        assert any(row.events_drift for row in report.rows)
        assert "drift" in to_markdown(report)

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare({}, {}, threshold=1.0)

    def test_millisecond_cells_inform_but_never_gate(self):
        # 200 events at 100k ev/s = 2 ms of wall: pure scheduler noise
        # territory, so even a 3x "regression" must not turn CI red.
        tiny = {
            "benchmarks": [
                {
                    "name": "t",
                    "extra_info": {
                        "scheduler": "round-robin",
                        "n_tasks": 100,
                        "events": 200,
                        "events_per_sec": 100_000.0,
                    },
                }
            ]
        }
        baseline = extract_cells(tiny)
        slowed = extract_cells(tiny)
        slowed_cell = next(iter(slowed.values()))
        slowed[slowed_cell.key] = type(slowed_cell)(
            scheduler=slowed_cell.scheduler,
            n_tasks=slowed_cell.n_tasks,
            events_per_sec=slowed_cell.events_per_sec / 3,
            events=slowed_cell.events,
        )
        report = compare(baseline, slowed)
        assert report.ok
        assert report.rows[0].status == "too-small"
        assert "below gating floor" in to_markdown(report)


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        cells = extract_cells(bench_json(GRID))
        path = tmp_path / "baseline.json"
        dump_baseline(cells, path, note="test")
        assert load_baseline(path) == cells

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "cells": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_committed_baseline_loads_and_covers_the_grid(self):
        path = Path(__file__).parent.parent / "benchmarks" / "baseline_scale.json"
        cells = load_baseline(path)
        assert ("sfs", 5000) in cells
        assert ("sfs-overload", 5000) in cells
        assert all(cell.events_per_sec > 0 for cell in cells.values())


def _load_cli():
    path = Path(__file__).parent.parent / "benchmarks" / "check_trend.py"
    spec = importlib.util.spec_from_file_location("check_trend", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCli:
    def test_gate_red_on_regression_and_step_summary(self, tmp_path, monkeypatch):
        cli = _load_cli()
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(bench_json(GRID)))
        update = [str(fresh), "--baseline", str(baseline), "--update-baseline"]
        assert cli.main(update) == 0

        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert cli.main([str(fresh), "--baseline", str(baseline)]) == 0

        slowed = [(sched, n, evps / 4) for sched, n, evps in GRID]
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(bench_json(slowed)))
        assert cli.main([str(slow), "--baseline", str(baseline)]) == 1
        assert "Regressed cells" in summary.read_text()

    def test_gate_errors_without_baseline(self, tmp_path):
        cli = _load_cli()
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(bench_json(GRID)))
        missing = tmp_path / "nope.json"
        assert cli.main([str(fresh), "--baseline", str(missing)]) == 2

    def test_gate_errors_on_empty_report(self, tmp_path):
        cli = _load_cli()
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"benchmarks": []}))
        assert cli.main([str(fresh)]) == 2
