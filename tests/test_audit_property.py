"""Property test: randomized seeded scenarios audit clean.

The auditor's checks encode invariants the simulator + SFS must hold
by construction, so *any* well-formed scenario — random populations,
weights, arrivals, finite/infinite behaviours, weight changes, kills,
timer jitter — must produce a violation-free report. This is the
``--audit`` pipeline's standing soundness guarantee: a false positive
here means an over-tight check, a true positive means a scheduler bug;
either way the property must stay green.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import Compute, Inf, Kill, Scenario, SetWeight, run_scenario

task_st = st.tuples(
    st.integers(min_value=1, max_value=12),  # weight
    st.one_of(
        st.none(),  # infinite compute
        st.floats(min_value=0.2, max_value=2.5),  # finite cpu seconds
    ),
    st.floats(min_value=0.0, max_value=1.5),  # arrival time
)

scenario_st = st.tuples(
    st.lists(task_st, min_size=2, max_size=6),
    st.integers(min_value=1, max_value=2),  # cpus
    st.sampled_from(["sfs", "sfq", "sfs-heuristic", "round-robin"]),
    st.floats(min_value=0.0, max_value=0.1),  # quantum jitter
    st.integers(min_value=0, max_value=2**16),  # jitter seed
    st.one_of(st.none(), st.integers(min_value=1, max_value=9)),  # reweight
    st.booleans(),  # kill the first task mid-run?
)


def build_scenario(drawn) -> Scenario:
    tasks, cpus, scheduler, jitter, seed, reweight, kill = drawn
    from repro.scenario import task as task_spec

    specs = tuple(
        task_spec(
            f"t{i}",
            weight,
            behavior=Inf() if cpu_s is None else Compute(cpu_s),
            at=at,
        )
        for i, (weight, cpu_s, at) in enumerate(tasks)
    )
    events = []
    if reweight is not None:
        events.append(SetWeight(task="t0", weight=reweight, at=2.0))
    if kill:
        events.append(Kill(task="t1", at=2.5))
    return Scenario(
        name="audit-property",
        scheduler=scheduler,
        cpus=cpus,
        duration=4.0,
        quantum=0.05,
        quantum_jitter=jitter,
        jitter_seed=seed,
        tasks=specs,
        events=tuple(events),
        audit=True,
        audit_params={"surplus_check_every": 1},
    )


@settings(max_examples=40, deadline=None)
@given(scenario_st)
def test_random_scenarios_audit_clean(drawn):
    report = run_scenario(build_scenario(drawn)).audit_report
    assert report.ok, report.render()


@settings(max_examples=15, deadline=None)
@given(scenario_st)
def test_audit_does_not_perturb_the_simulation(drawn):
    """Observing must not interact: shares match the unaudited run."""
    audited = run_scenario(build_scenario(drawn))
    plain_scenario = build_scenario(drawn).with_(audit=False, audit_params={})
    plain = run_scenario(plain_scenario)
    assert audited.shares() == plain.shares()
