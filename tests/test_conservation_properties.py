"""Property-based conservation laws over randomized workloads.

Whatever the scheduler and workload, a correct simulation must satisfy
basic physics: CPU service is conserved (busy time == total service),
never exceeds capacity, no task receives more than wall-clock time per
CPU it could occupy, and every task's service is non-negative and
consistent with its sampled series.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sfs import SurplusFairScheduler
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.events import Block, Run
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskState
from repro.workloads.base import GeneratorBehavior

SCHEDULER_FACTORIES = [
    SurplusFairScheduler,
    lambda: HeuristicSurplusFairScheduler(scan_depth=3, refresh_every=7),
    StartTimeFairScheduler,
    LinuxTimeSharingScheduler,
]

segment_st = st.one_of(
    st.builds(Run, st.floats(min_value=0.0, max_value=0.5)),
    st.builds(Block, st.floats(min_value=0.0, max_value=0.3)),
)

task_spec_st = st.tuples(
    st.floats(min_value=0.1, max_value=50.0),  # weight
    st.lists(segment_st, min_size=0, max_size=6),  # finite behaviour
    st.booleans(),  # append an infinite run at the end?
    st.floats(min_value=0.0, max_value=1.0),  # arrival time
)


def build_machine(sched_idx, cpus, quantum, specs):
    scheduler = SCHEDULER_FACTORIES[sched_idx]()
    machine = Machine(scheduler, cpus=cpus, quantum=quantum)
    tasks = []
    for i, (weight, segments, infinite, at) in enumerate(specs):
        segs = list(segments)
        if infinite:
            segs.append(Run(math.inf))
        tasks.append(
            machine.add_task(
                Task(GeneratorBehavior(iter(segs)), weight=weight,
                     name=f"t{i}"),
                at=at,
            )
        )
    return machine, tasks


@settings(max_examples=40, deadline=None)
@given(
    sched_idx=st.integers(min_value=0, max_value=len(SCHEDULER_FACTORIES) - 1),
    cpus=st.integers(min_value=1, max_value=4),
    quantum=st.floats(min_value=0.01, max_value=0.3),
    specs=st.lists(task_spec_st, min_size=1, max_size=8),
    horizon=st.floats(min_value=0.5, max_value=5.0),
)
def test_conservation_laws(sched_idx, cpus, quantum, specs, horizon):
    machine, tasks = build_machine(sched_idx, cpus, quantum, specs)
    machine.run_until(horizon)

    total_service = sum(t.service for t in tasks)
    busy = sum(p.busy_time for p in machine.processors)

    # 1. Service is conserved: what CPUs did equals what tasks received.
    assert abs(total_service - busy) < 1e-6

    # 2. Capacity is never exceeded.
    assert total_service <= cpus * horizon + 1e-6

    # 3. Per-task sanity: non-negative, and no more than one CPU's
    #    worth of time since its arrival.
    for t in tasks:
        assert t.service >= -1e-12
        if t.arrival_time is not None:
            assert t.service <= (horizon - t.arrival_time) + 1e-6

    # 4. Sampled series are monotone and end at the task's service.
    for t in tasks:
        values = [s for _, s in t.series]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        if values:
            assert abs(values[-1] - t.service) < 1e-6

    # 5. States are coherent: exited tasks have exit times, runnable
    #    count matches task states.
    runnable = sum(
        1 for t in tasks if t.state in (TaskState.RUNNABLE, TaskState.RUNNING)
    )
    assert runnable == machine.runnable_count
    for t in tasks:
        if t.state is TaskState.EXITED:
            assert t.exit_time is not None


@settings(max_examples=25, deadline=None)
@given(
    cpus=st.integers(min_value=1, max_value=3),
    specs=st.lists(task_spec_st, min_size=2, max_size=6),
)
def test_sfs_surplus_invariants_hold_for_random_workloads(cpus, specs):
    machine, tasks = build_machine(0, cpus, 0.05, specs)
    scheduler = machine.scheduler
    for step in range(1, 8):
        machine.run_until(step * 0.4)
        surpluses = scheduler.surpluses()
        if not surpluses:
            continue
        values = list(surpluses.values())
        # alpha_i >= 0 always; at least one zero among runnable threads.
        assert min(values) >= -1e-9
        assert min(values) < 1e-9
