"""Execution-backend contract tests.

The load-bearing property: every backend returns cell lists identical
to ``SerialBackend`` — same indices, coordinates and metric values
bit-for-bit (``wall_s`` is the one field allowed to differ, being a
measurement of the substrate, not of the simulation). Plus the two
failure-path contracts this PR exists for: a broken process pool
resumes only *unfinished* cells, and a killed chunked run resumes
from its JSONL checkpoint without re-running completed cells.
"""

import concurrent.futures
import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import (
    CellJob,
    ChunkedBackend,
    ProcessPoolBackend,
    SerialBackend,
    SSHBackend,
    cell_from_json,
    cell_to_json,
    execute_job,
    load_checkpoint,
    make_backend,
)
from repro.exec.worker import decode_scenario, encode_scenario
from repro.scenario import (
    Scenario,
    cells_in_grid_order,
    group,
    run_cells,
    stream_cells,
    task,
)

SCHEDULERS = ("sfs", "sfq", "round-robin", "stride")


def _scenario(scheduler="sfs", cpus=1, duration=1.0, n_tasks=3, quantum=0.2):
    return Scenario(
        name=f"exec-{scheduler}-{cpus}-{n_tasks}",
        scheduler=scheduler,
        cpus=cpus,
        quantum=quantum,
        duration=duration,
        tasks=(task("heavy", 2), *group(n_tasks - 1, 1, "bg")),
    )


def _grid(n_cells=4):
    return [
        _scenario(
            scheduler=SCHEDULERS[i % len(SCHEDULERS)], cpus=1 + i % 2
        )
        for i in range(n_cells)
    ]


def _jobs(scenarios, metrics=("jains", "shares")):
    return [
        CellJob(index=i, scenario=s, metrics=metrics)
        for i, s in enumerate(scenarios)
    ]


def _comparable(cells):
    """Everything but wall_s, in index order."""
    return sorted(
        (c.index, c.scheduler, c.cpus, c.quantum, dict(c.metrics))
        for c in cells
    )


# ----------------------------------------------------------------------
# backend equivalence
# ----------------------------------------------------------------------


class TestEquivalence:
    def test_all_backends_identical_on_a_fixed_grid(self, tmp_path):
        scenarios = _grid(5)
        metrics = ("jains", "shares", "context_switches")
        reference = run_cells(scenarios, metrics, backend="serial")
        assert [c.index for c in reference] == list(range(5))
        for backend in (
            "process",
            ProcessPoolBackend(workers=2),
            ChunkedBackend(workers=0, chunk_size=2),
            ChunkedBackend(
                workers=2,
                chunk_size=2,
                checkpoint=str(tmp_path / "eq.jsonl"),
            ),
        ):
            cells = run_cells(scenarios, metrics, backend=backend)
            assert _comparable(cells) == _comparable(reference), backend

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        picks=st.lists(
            st.tuples(
                st.sampled_from(SCHEDULERS),
                st.integers(min_value=1, max_value=2),  # cpus
                st.integers(min_value=2, max_value=4),  # tasks
            ),
            min_size=1,
            max_size=5,
        ),
        chunk_size=st.integers(min_value=1, max_value=3),
    )
    def test_random_grids_serial_pool_chunked_identical(
        self, picks, chunk_size
    ):
        scenarios = [
            _scenario(scheduler=s, cpus=c, n_tasks=n, duration=0.8)
            for s, c, n in picks
        ]
        metrics = ("jains", "total_service")
        serial = run_cells(scenarios, metrics, backend="serial")
        pooled = run_cells(scenarios, metrics, backend="process", workers=2)
        chunked = run_cells(
            scenarios,
            metrics,
            backend=ChunkedBackend(workers=2, chunk_size=chunk_size),
        )
        assert (
            _comparable(serial) == _comparable(pooled) == _comparable(chunked)
        )

    def test_grid_order_restored_from_completion_order(self):
        jobs = _jobs(_grid(4), metrics=("jains",))
        shuffled = [execute_job(j) for j in (jobs[2], jobs[0], jobs[3], jobs[1])]
        ordered = list(cells_in_grid_order(iter(shuffled)))
        assert [c.index for c in ordered] == [0, 1, 2, 3]

    def test_stream_cells_is_incremental(self):
        seen = []
        for cell in stream_cells(_grid(3), ("jains",), backend="serial"):
            seen.append(cell.index)
        assert seen == [0, 1, 2]


# ----------------------------------------------------------------------
# broken process pool: resume ONLY unfinished cells
# ----------------------------------------------------------------------


class _BreakAfter:
    """Executor double: completes K submissions, then the pool 'dies'.

    Runs its K successful cells through the *real* ``execute_job``
    (bypassing any monkeypatched counter), exactly like a worker
    process would — so the test's rerun counter sees only the serial
    resume path.
    """

    def __init__(self, k):
        self.k = k
        self.ran = []

    def submit(self, fn, job):
        future = concurrent.futures.Future()
        if len(self.ran) < self.k:
            self.ran.append(job.index)
            future.set_result(execute_job(job))
        else:
            future.set_exception(
                concurrent.futures.process.BrokenProcessPool("boom")
            )
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class _BreakOnSubmit:
    """Executor double: the pool dies while jobs are still being fed.

    Completes K submissions (through the real ``execute_job``), then
    ``submit`` itself raises — the shape of a worker OOMing while the
    submission loop over a big grid is still running.
    """

    def __init__(self, k):
        self.k = k
        self.ran = []

    def submit(self, fn, job):
        if len(self.ran) >= self.k:
            raise concurrent.futures.process.BrokenProcessPool("mid-submit")
        self.ran.append(job.index)
        future = concurrent.futures.Future()
        future.set_result(execute_job(job))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestPoolResume:
    def test_break_during_submission_salvages_submitted_results(
        self, monkeypatch
    ):
        scenarios = _grid(5)
        jobs = _jobs(scenarios, metrics=("jains",))
        fake = _BreakOnSubmit(3)
        backend = ProcessPoolBackend(
            workers=2, _executor_factory=lambda n: fake
        )
        reruns = []
        real = execute_job

        def counting(job):
            reruns.append(job.index)
            return real(job)

        monkeypatch.setattr("repro.exec.pool.execute_job", counting)
        with pytest.warns(RuntimeWarning, match="resuming the 2 unfinished"):
            cells = list(backend.submit(jobs))
        assert sorted(c.index for c in cells) == [0, 1, 2, 3, 4]
        # The three futures submitted before the break are salvaged,
        # not re-executed.
        assert sorted(reruns) == [3, 4]

    def test_broken_pool_resumes_only_unfinished(self, monkeypatch):
        scenarios = _grid(5)
        jobs = _jobs(scenarios, metrics=("jains",))
        fake = _BreakAfter(3)
        backend = ProcessPoolBackend(
            workers=2, _executor_factory=lambda n: fake
        )
        reruns = []
        real = execute_job

        def counting(job):
            reruns.append(job.index)
            return real(job)

        monkeypatch.setattr("repro.exec.pool.execute_job", counting)
        with pytest.warns(RuntimeWarning, match="resuming the 2 unfinished"):
            cells = list(backend.submit(jobs))
        # All five cells come back...
        assert sorted(c.index for c in cells) == [0, 1, 2, 3, 4]
        # ...but only the two that never finished were re-executed.
        assert sorted(reruns) == sorted(
            set(range(5)) - set(fake.ran)
        )
        assert len(reruns) == 2
        assert backend.serial_reruns == 2
        # And the resumed cells match a fresh serial run exactly.
        assert _comparable(cells) == _comparable(
            run_cells(scenarios, ("jains",), backend="serial")
        )

    def test_cell_raising_oserror_propagates_not_pool_death(self):
        # An OSError raised by the *cell* (e.g. a behavior reading a
        # missing file in the worker) must propagate as the cell's own
        # failure — not be misread as a dead pool, which would tear
        # down a healthy pool and serially re-run the grid.
        class _CellFails:
            def submit(self, fn, job):
                future = concurrent.futures.Future()
                if job.index == 0:
                    future.set_result(execute_job(job))
                else:
                    future.set_exception(OSError("missing config"))
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        backend = ProcessPoolBackend(
            workers=2, _executor_factory=lambda n: _CellFails()
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any pool-death warn fails
            with pytest.raises(OSError, match="missing config"):
                list(backend.submit(_jobs(_grid(2), metrics=("jains",))))

    def test_pool_creation_failure_degrades_to_serial(self):
        def no_pool(n):
            raise PermissionError("subprocess forbidden")

        backend = ProcessPoolBackend(workers=2, _executor_factory=no_pool)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            cells = list(backend.submit(_jobs(_grid(3), metrics=("jains",))))
        assert sorted(c.index for c in cells) == [0, 1, 2]


# ----------------------------------------------------------------------
# chunked streaming: checkpoint, crash, resume
# ----------------------------------------------------------------------


class TestChunkedCheckpoint:
    def test_kill_mid_grid_then_resume_skips_completed(
        self, tmp_path, monkeypatch
    ):
        scenarios = _grid(6)
        jobs = _jobs(scenarios, metrics=("jains",))
        ck = str(tmp_path / "ck.jsonl")

        # First run "crashes" after 3 cells: abandon the iterator.
        first = ChunkedBackend(workers=0, chunk_size=2, checkpoint=ck)
        stream = first.submit(jobs)
        got = [next(stream) for _ in range(3)]
        stream.close()  # the kill
        first.close()
        lines = [json.loads(s) for s in open(ck).read().splitlines()]
        assert len(lines) == 3
        assert sorted(c.index for c in got) == sorted(
            p["index"] for p in lines
        )

        # Resume: completed cells replay from the file, never re-run.
        executed = []
        real = execute_job

        def counting(job):
            executed.append(job.index)
            return real(job)

        monkeypatch.setattr("repro.exec.serial.execute_job", counting)
        second = ChunkedBackend(workers=0, chunk_size=2, checkpoint=ck)
        cells = list(second.submit(jobs))
        assert second.resumed == 3
        assert sorted(executed) == [3, 4, 5]
        assert sorted(c.index for c in cells) == [0, 1, 2, 3, 4, 5]
        # Checkpoint now covers the whole grid — a third run executes
        # nothing at all.
        executed.clear()
        third = ChunkedBackend(workers=0, chunk_size=2, checkpoint=ck)
        replayed = list(third.submit(jobs))
        assert executed == []
        assert third.resumed == 6
        assert _comparable(replayed) == _comparable(cells)

    def test_resumed_cells_match_serial_exactly(self, tmp_path):
        scenarios = _grid(4)
        ck = str(tmp_path / "exact.jsonl")
        first = run_cells(
            scenarios, ("jains", "shares"), backend="chunked",
            checkpoint=ck, workers=0,
        )
        resumed = run_cells(
            scenarios, ("jains", "shares"), backend="chunked",
            checkpoint=ck, workers=0,
        )
        serial = run_cells(scenarios, ("jains", "shares"), backend="serial")
        assert _comparable(first) == _comparable(serial)
        # Byte-level JSON round-trip is exact, wall_s included.
        assert resumed == first

    def test_checkpoint_from_a_different_grid_rejected(self, tmp_path):
        ck = str(tmp_path / "stale.jsonl")
        run_cells(
            _grid(3), ("jains",), backend="chunked", checkpoint=ck, workers=0
        )
        other = [_scenario(scheduler="sfq", cpus=2, quantum=0.1)] * 2
        with pytest.raises(ValueError, match="wrong checkpoint file"):
            run_cells(
                [
                    s.with_(name=f"other-{i}")
                    for i, s in enumerate(other)
                ],
                ("jains",),
                backend="chunked",
                checkpoint=ck,
                workers=0,
            )

    def test_same_coordinates_different_scenario_rejected(self, tmp_path):
        # Same (scheduler, cpus, quantum) but a different duration:
        # only the scenario fingerprint can tell these grids apart.
        ck = str(tmp_path / "fp.jsonl")
        short = [_scenario(duration=1.0), _scenario(scheduler="sfq")]
        run_cells(
            short, ("jains",), backend="chunked", checkpoint=ck, workers=0
        )
        longer = [
            s.with_(duration=2.0, name=f"{s.name}-long") for s in short
        ]
        with pytest.raises(ValueError, match="fingerprint"):
            run_cells(
                longer, ("jains",), backend="chunked",
                checkpoint=ck, workers=0,
            )

    def test_different_metrics_rejected_by_fingerprint(self, tmp_path):
        ck = str(tmp_path / "fpm.jsonl")
        scenarios = _grid(2)
        run_cells(
            scenarios, ("jains",), backend="chunked",
            checkpoint=ck, workers=0,
        )
        with pytest.raises(ValueError, match="fingerprint"):
            run_cells(
                scenarios, ("shares",), backend="chunked",
                checkpoint=ck, workers=0,
            )

    def test_run_cells_chunk_size_reaches_the_backend(self, tmp_path):
        # chunk_size=1 + a kill after the first cell: exactly one line
        # in the checkpoint proves the chunk bound was honored.
        jobs = _jobs(_grid(3), metrics=("jains",))
        ck = str(tmp_path / "cs.jsonl")
        backend = ChunkedBackend(workers=0, chunk_size=1, checkpoint=ck)
        stream = backend.submit(jobs)
        next(stream)
        stream.close()
        backend.close()
        assert len(open(ck).readlines()) == 1
        # and the public run_cells kwarg forwards it
        cells = run_cells(
            _grid(3), ("jains",), backend="chunked",
            checkpoint=str(tmp_path / "cs2.jsonl"), chunk_size=1, workers=0,
        )
        assert len(cells) == 3

    def test_torn_final_line_is_dropped(self, tmp_path):
        scenarios = _grid(3)
        jobs = _jobs(scenarios, metrics=("jains",))
        ck = tmp_path / "torn.jsonl"
        run_cells(
            scenarios, ("jains",), backend="chunked",
            checkpoint=str(ck), workers=0,
        )
        # Tear the last line the way a mid-write kill would.
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: 10])
        with pytest.warns(RuntimeWarning, match="torn/corrupt"):
            done = load_checkpoint(str(ck), jobs)
        assert sorted(done) == [0, 1]

    def test_torn_tail_is_truncated_so_resume_heals_the_file(
        self, tmp_path, monkeypatch
    ):
        # A torn line must not poison the file: the resume truncates to
        # the valid prefix, appends the re-run cells *there*, and the
        # next resume re-runs nothing.
        scenarios = _grid(4)
        ck = tmp_path / "heal.jsonl"
        run_cells(
            scenarios, ("jains",), backend="chunked",
            checkpoint=str(ck), workers=0,
        )
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:2]) + "\n" + lines[2][: 15])
        executed = []
        real = execute_job

        def counting(job):
            executed.append(job.index)
            return real(job)

        monkeypatch.setattr("repro.exec.serial.execute_job", counting)
        with pytest.warns(RuntimeWarning, match="torn/corrupt"):
            run_cells(
                scenarios, ("jains",), backend="chunked",
                checkpoint=str(ck), workers=0,
            )
        assert sorted(executed) == [2, 3]
        assert len(ck.read_text().splitlines()) == 4
        executed.clear()
        run_cells(
            scenarios, ("jains",), backend="chunked",
            checkpoint=str(ck), workers=0,
        )
        assert executed == []
        assert len(ck.read_text().splitlines()) == 4

    def test_checkpoint_parent_directory_is_created(self, tmp_path):
        ck = tmp_path / "deep" / "nested" / "ck.jsonl"
        cells = run_cells(
            _grid(2), ("jains",), backend="chunked",
            checkpoint=str(ck), workers=0,
        )
        assert len(cells) == 2
        assert len(ck.read_text().splitlines()) == 2

    def test_checkpoint_json_roundtrip_is_exact(self):
        cell = execute_job(_jobs([_scenario()], metrics=("jains", "shares"))[0])
        assert cell_from_json(json.loads(json.dumps(cell_to_json(cell)))) == cell

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ChunkedBackend(chunk_size=0)


# ----------------------------------------------------------------------
# worker protocol + ssh backend (local subprocess workers)
# ----------------------------------------------------------------------


class TestWorkerProtocol:
    def test_scenario_codec_roundtrip(self):
        scenario = _scenario(scheduler="sfq", cpus=2)
        assert decode_scenario(encode_scenario(scenario)) == scenario

    def test_serve_runs_a_cell(self):
        import io

        from repro.exec.worker import serve

        job = _jobs([_scenario()], metrics=("jains",))[0]
        request = {
            "op": "run",
            "index": 0,
            "scenario": encode_scenario(job.scenario),
            "metrics": ["jains"],
        }
        stdin = io.StringIO(
            json.dumps({"op": "ping"})
            + "\n"
            + json.dumps(request)
            + "\n"
            + json.dumps({"op": "shutdown"})
            + "\n"
        )
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 0
        replies = [json.loads(s) for s in stdout.getvalue().splitlines()]
        assert [r["op"] for r in replies] == ["hello", "pong", "result", "bye"]
        cell = cell_from_json(replies[2]["cell"])
        reference = execute_job(job)
        assert dict(cell.metrics) == dict(reference.metrics)
        assert (cell.index, cell.scheduler, cell.cpus) == (0, "sfs", 1)

    def test_serve_reports_bad_requests_and_cell_errors(self):
        import io

        from repro.exec.worker import serve

        stdin = io.StringIO(
            "not json\n"
            + json.dumps({"op": "warp"})
            + "\n"
            + json.dumps(
                {"op": "run", "index": 3, "scenario": "!!!", "metrics": []}
            )
            + "\n"
        )
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 0
        replies = [json.loads(s) for s in stdout.getvalue().splitlines()]
        assert [r["op"] for r in replies] == [
            "hello",
            "error",
            "error",
            "error",
        ]
        assert replies[3]["index"] == 3

    def test_ssh_backend_local_workers_match_serial(self):
        scenarios = _grid(4)
        metrics = ("jains", "context_switches")
        with SSHBackend(hosts=("local", "local")) as backend:
            cells = run_cells(scenarios, metrics, backend=backend)
        assert _comparable(cells) == _comparable(
            run_cells(scenarios, metrics, backend="serial")
        )

    def test_ssh_backend_needs_hosts(self):
        with pytest.raises(ValueError, match="at least one host"):
            SSHBackend(hosts=())


# ----------------------------------------------------------------------
# backend registry / run_cells plumbing
# ----------------------------------------------------------------------


class TestMakeBackend:
    def test_names_resolve(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process"), ProcessPoolBackend)
        assert isinstance(make_backend("chunked"), ChunkedBackend)
        assert isinstance(make_backend("ssh", hosts=("local",)), SSHBackend)

    def test_checkpoint_promotes_to_chunked(self, tmp_path):
        ck = str(tmp_path / "x.jsonl")
        for name in ("serial", "process"):
            backend = make_backend(name, checkpoint=ck)
            assert isinstance(backend, ChunkedBackend)
        ssh = make_backend("ssh", hosts=("local",), checkpoint=ck)
        assert isinstance(ssh, ChunkedBackend)
        assert isinstance(ssh.inner, SSHBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_run_cells_name_and_checkpoint_kwargs(self, tmp_path):
        scenarios = _grid(2)
        ck = str(tmp_path / "rc.jsonl")
        cells = run_cells(
            scenarios, ("jains",), backend="serial", checkpoint=ck
        )
        assert len(cells) == 2 and len(open(ck).readlines()) == 2

    def test_cancel_stops_serial_iteration(self):
        backend = SerialBackend()
        jobs = _jobs(_grid(3), metrics=("jains",))
        stream = backend.submit(jobs)
        first = next(stream)
        backend.cancel()
        assert first.index == 0
        assert list(stream) == []
