"""The example scenario library must stay loadable and runnable.

``examples/scenarios/`` is executable documentation: CI runs every
config, the README indexes them, and ``server_cell.yaml`` pins the
whole config pipeline against the python-built ``server_scenario``
twin — bit-identical population, duration and ``SimulationResult``.
"""

import pickle
from pathlib import Path

import pytest

from repro.scenario import load_scenario, run_scenario, server_scenario
from repro.scenario.spec import Scenario

SCENARIO_DIR = Path(__file__).resolve().parents[1] / "examples" / "scenarios"
CONFIGS = sorted(SCENARIO_DIR.glob("*.yaml"))


def test_library_is_nonempty_and_indexed():
    assert len(CONFIGS) >= 8
    readme = (SCENARIO_DIR / "README.md").read_text()
    for config in CONFIGS:
        assert f"`{config.name}`" in readme, f"{config.name} missing from README"


@pytest.mark.parametrize("config", CONFIGS, ids=lambda p: p.stem)
def test_example_config_loads(config):
    scenario = load_scenario(config)
    assert isinstance(scenario, Scenario)
    assert scenario.name
    assert scenario.metrics, "example configs should name their metrics"
    assert scenario.duration is not None and scenario.duration > 0


@pytest.mark.parametrize("config", CONFIGS, ids=lambda p: p.stem)
def test_example_config_runs_shortened(config):
    scenario = load_scenario(config)
    short = scenario.with_(
        duration=min(scenario.duration, 2.0), metrics=("completed", "jains")
    )
    result = run_scenario(short)
    assert set(result.metrics) == {"completed", "jains"}


def test_server_cell_twin_is_bit_identical():
    loaded = load_scenario(SCENARIO_DIR / "server_cell.yaml")
    built = server_scenario(400, metrics=("class_shares", "jains"))
    assert loaded == built
    r1 = run_scenario(loaded)
    r2 = run_scenario(built)
    assert pickle.dumps(r1.metrics) == pickle.dumps(r2.metrics)
