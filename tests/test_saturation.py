"""Smoke + shape tests for the saturation study (scaled-down grid)."""

import os

import pytest

from repro.experiments import saturation


@pytest.fixture(scope="module")
def small_grid():
    # CI's chunked-backend smoke step sets SFS_SATURATION_BACKEND to
    # drive the very same grid through the streaming/checkpoint path;
    # results must be identical to the default serial run.
    backend = os.environ.get("SFS_SATURATION_BACKEND")
    return saturation.run(
        n_tasks=60,
        loads=(0.8, 1.5),
        policies=("sfs-heuristic", "sfq"),
        scan_depths=(2, 20),
        accuracy_n=80,
        workers=0,
        backend=backend,
    )


class TestRun:
    def test_grid_is_fully_populated(self, small_grid):
        keys = {(p, ld) for p in small_grid.policies for ld in small_grid.loads}
        assert set(small_grid.events_per_sec) == keys
        assert set(small_grid.sojourn_p50) == keys
        assert set(small_grid.sojourn_p95) == keys
        assert set(small_grid.sojourn_p99) == keys
        assert set(small_grid.completed) == keys

    def test_throughput_and_latency_are_sane(self, small_grid):
        for key, eps in small_grid.events_per_sec.items():
            assert eps > 0
            assert 0 < small_grid.completed[key] <= small_grid.n_tasks
            assert (
                small_grid.sojourn_p50[key]
                <= small_grid.sojourn_p95[key]
                <= small_grid.sojourn_p99[key]
            )

    def test_censored_tail_bounds_completed_percentile(self, small_grid):
        keys = {(p, ld) for p in small_grid.policies for ld in small_grid.loads}
        assert set(small_grid.sojourn_p95_censored) == keys
        assert set(small_grid.in_system) == keys
        for key in sorted(keys):
            assert small_grid.sojourn_p95_censored[key] > 0
            if small_grid.in_system[key] == 0:
                # Nothing censored: the estimates must coincide exactly.
                assert small_grid.sojourn_p95_censored[key] == pytest.approx(
                    small_grid.sojourn_p95[key]
                )

    def test_overload_degrades_latency(self, small_grid):
        for policy in small_grid.policies:
            lo, hi = min(small_grid.loads), max(small_grid.loads)
            assert (
                small_grid.sojourn_p95[(policy, hi)]
                >= small_grid.sojourn_p95[(policy, lo)]
            )

    def test_accuracy_curve_covers_depths_and_improves(self, small_grid):
        assert set(small_grid.accuracy) == set(small_grid.scan_depths)
        assert small_grid.accuracy[20] >= small_grid.accuracy[2] - 1e-9
        assert small_grid.accuracy[20] >= 0.95

    def test_by_class_percentiles_are_subset(self, small_grid):
        for (policy, load, cls), value in small_grid.sojourn_p95_by_class.items():
            assert cls in {"std", "pro", "ent"}
            assert value > 0
            assert (policy, load) in small_grid.sojourn_p95


class TestExecThreading:
    def test_checkpoint_and_chunk_size_kwargs_accepted(self, tmp_path):
        # The CLI forwards checkpoint/chunk_size straight into run();
        # `sfs-experiment run saturation --checkpoint ck.jsonl` broke
        # before run() grew the kwarg.
        ck = tmp_path / "sat.jsonl"
        result = saturation.run(
            n_tasks=40,
            loads=(0.8,),
            policies=("sfq",),
            scan_depths=(2,),
            accuracy_n=40,
            workers=0,
            checkpoint=str(ck),
            chunk_size=1,
        )
        assert set(result.events_per_sec) == {("sfq", 0.8)}
        assert len(ck.read_text().splitlines()) == 1


class TestRender:
    def test_render_mentions_everything(self, small_grid):
        out = saturation.render(small_grid)
        assert "Saturation study" in out
        assert "p95 sojourn vs offered load" in out
        assert "heuristic accuracy vs scan depth" in out
        for policy in small_grid.policies:
            assert policy in out
