"""Tests for the start/finish-tag machinery (Eqs. 5-6, virtual time)."""

import math

import pytest

from tests.conftest import add_inf
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.events import Block, Run
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import GeneratorBehavior


def sfq_machine(cpus=2, quantum=0.2, **kw):
    sched = StartTimeFairScheduler(**kw)
    return Machine(sched, cpus=cpus, quantum=quantum), sched


class TestVirtualTime:
    def test_initial_virtual_time_is_zero(self):
        _, sched = sfq_machine()
        assert sched.virtual_time == 0.0

    def test_virtual_time_is_min_start_tag(self):
        m, sched = sfq_machine(cpus=1, quantum=0.1)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 10, "B")
        m.run_until(1.0)
        sched._refresh_vtime()
        tags = [a.sched["S"], b.sched["S"]]
        assert sched.virtual_time == pytest.approx(min(tags))

    def test_virtual_time_held_at_last_finish_when_idle(self):
        m, sched = sfq_machine(cpus=1, quantum=0.2)

        def gen():
            yield Run(0.5)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="solo"))
        m.run_until(2.0)
        # The system went idle; v holds at the last finish tag.
        assert sched.virtual_time == pytest.approx(t.sched["F"])

    def test_new_arrival_starts_at_virtual_time(self):
        m, sched = sfq_machine(cpus=1, quantum=0.2)
        add_inf(m, 1, "A")
        late = add_inf(m, 1, "B", at=1.0)
        m.run_until(1.0001)
        # B's start tag equals v at its arrival, i.e. A's min tag then.
        assert late.sched["S"] == pytest.approx(1.0, abs=0.21)

    def test_arrival_into_idle_system_resumes_from_last_finish(self):
        m, sched = sfq_machine(cpus=1, quantum=0.2)

        def gen():
            yield Run(0.4)

        first = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="a"))
        second = add_inf(m, 1, "b", at=2.0)
        # Sample immediately after arrival, before b's own tag advances.
        m.run_until(2.01)
        assert second.sched["S"] == pytest.approx(first.sched["F"])


class TestTagUpdates:
    def test_finish_tag_uses_actual_run_length(self):
        # A thread that blocks mid-quantum is charged only what it ran
        # (Eq. 5 with variable q).
        m, sched = sfq_machine(cpus=1, quantum=0.2)

        def gen():
            yield Run(0.05)  # less than the quantum
            yield Block(1.0)
            yield Run(math.inf)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="t"))
        m.run_until(0.06)
        assert t.sched["F"] == pytest.approx(0.05)

    def test_continuously_runnable_start_is_previous_finish(self):
        m, sched = sfq_machine(cpus=1, quantum=0.2)
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(0.21)
        # A ran the first quantum; its S must equal its F.
        assert a.sched["S"] == a.sched["F"] == pytest.approx(0.2)

    def test_wakeup_start_tag_is_max_of_finish_and_vtime(self):
        # §2.3: sleeping must not accumulate credit.
        m, sched = sfq_machine(cpus=1, quantum=0.2)

        def gen():
            yield Run(0.1)
            yield Block(5.0)
            yield Run(math.inf)

        sleeper = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="s"))
        add_inf(m, 1, "hog")
        m.run_until(6.0)
        # While asleep, v advanced well past the sleeper's F (~0.1+).
        assert sleeper.sched["S"] > sleeper.sched["F"] - 1e-9
        assert sleeper.sched["S"] >= 4.0  # roughly v at wake time

    def test_tag_rate_inversely_proportional_to_phi(self):
        m, sched = sfq_machine(cpus=2, quantum=0.2, readjust=True)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 10, "B")  # readjusted to phi=1
        c = add_inf(m, 1, "C")
        m.run_until(10.0)
        # With phis [1, 2, 1], B's tag advances at half rate per second
        # of service; all tags advance at equal wall rates in steady
        # state, so services are 1:2:1 and tags stay close.
        assert b.phi == pytest.approx(2.0)
        tags = sorted(t.sched["S"] for t in (a, b, c))
        assert tags[-1] - tags[0] < 1.0


class TestWeightChangeHook:
    def test_plain_scheduler_mirrors_weight_into_phi(self):
        m, sched = sfq_machine(cpus=1)
        a = add_inf(m, 1, "A")
        m.run_until(0.5)
        m.change_weight(a, 7.0)
        assert a.phi == 7.0

    def test_readjusting_scheduler_caps_phi(self):
        m, sched = sfq_machine(cpus=2, readjust=True)
        add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        c = add_inf(m, 1, "C")
        m.run_until(0.5)
        m.change_weight(c, 100.0)
        # 100/102 > 1/2: c is capped to an effective half share.
        assert c.phi == pytest.approx(2.0)
        assert c.weight == 100.0


class TestRunnableBookkeeping:
    def test_runnable_tasks_sorted_by_tid(self):
        m, sched = sfq_machine(cpus=2)
        tasks = [add_inf(m, 1, f"T{i}") for i in range(4)]
        m.run_until(0.1)
        assert sched.runnable_tasks() == tasks

    def test_blocked_task_leaves_runnable_set(self):
        m, sched = sfq_machine(cpus=1)

        def gen():
            yield Run(0.05)
            yield Block(10.0)
            yield Run(math.inf)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="b"))
        add_inf(m, 1, "bg")
        m.run_until(1.0)
        assert t not in sched.runnable_tasks()
        assert len(sched.start_queue) == 1
