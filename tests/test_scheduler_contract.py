"""Contract tests every registered scheduler must satisfy.

These run the same scenarios across the whole registry so that any new
policy automatically inherits the machine-interface obligations: work
conservation, sane state handling under churn, full utilization,
determinism, and survival of weight changes mid-run.
"""

import math
import random

import pytest

from repro.schedulers.registry import make_scheduler, scheduler_names
from repro.sim.events import Block, Run
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskState
from repro.workloads.base import GeneratorBehavior
from repro.workloads.cpu_bound import FiniteCompute, Infinite

ALL = scheduler_names()


@pytest.mark.parametrize("name", ALL)
def test_work_conserving_under_static_load(name):
    machine = Machine(make_scheduler(name), cpus=2, quantum=0.1,
                      check_work_conserving=True)
    for i in range(5):
        machine.add_task(Task(Infinite(), weight=i + 1, name=f"T{i}"))
    machine.run_until(3.0)  # must not raise
    total = sum(t.service for t in machine.tasks)
    assert total == pytest.approx(6.0)


@pytest.mark.parametrize("name", ALL)
def test_survives_churn(name):
    """Arrivals, departures, blocking, wakeups and kills in one run."""
    machine = Machine(make_scheduler(name), cpus=2, quantum=0.05)
    rng = random.Random(3)

    def blinker():
        while True:
            yield Run(0.02)
            yield Block(0.03)

    persistent = [
        machine.add_task(Task(Infinite(), weight=rng.choice([1, 2, 4]),
                              name=f"p{i}"))
        for i in range(3)
    ]
    for i in range(10):
        machine.add_task(
            Task(FiniteCompute(0.1), weight=1, name=f"f{i}"), at=i * 0.3
        )
    for i in range(3):
        machine.add_task(
            Task(GeneratorBehavior(blinker()), weight=1, name=f"b{i}")
        )
    machine.kill_task_at(persistent[0], 2.0)
    machine.run_until(5.0)
    assert persistent[0].state is TaskState.EXITED
    # The machine stayed saturated (>=2 runnable at all times).
    busy = sum(p.busy_time for p in machine.processors)
    assert busy == pytest.approx(10.0, abs=0.5)


@pytest.mark.parametrize("name", ALL)
def test_single_task_owns_machine(name):
    machine = Machine(make_scheduler(name), cpus=1, quantum=0.1)
    t = machine.add_task(Task(Infinite(), weight=1, name="solo"))
    machine.run_until(2.0)
    assert t.service == pytest.approx(2.0)


@pytest.mark.parametrize("name", ALL)
def test_deterministic_given_same_setup(name):
    def run():
        machine = Machine(make_scheduler(name), cpus=2, quantum=0.1)
        tasks = [
            machine.add_task(Task(Infinite(), weight=w, name=f"w{w}"))
            for w in (1, 2, 3)
        ]
        machine.run_until(3.0)
        return [t.service for t in tasks]

    assert run() == run()


@pytest.mark.parametrize("name", ALL)
def test_weight_change_does_not_crash(name):
    machine = Machine(make_scheduler(name), cpus=2, quantum=0.1)
    tasks = [
        machine.add_task(Task(Infinite(), weight=1, name=f"T{i}"))
        for i in range(4)
    ]
    machine.set_weight_at(tasks[0], 5.0, 1.0)
    machine.set_weight_at(tasks[1], 0.5, 2.0)
    machine.run_until(4.0)
    assert sum(t.service for t in tasks) == pytest.approx(8.0)


@pytest.mark.parametrize("name", ALL)
def test_blocked_tasks_never_scheduled(name):
    machine = Machine(make_scheduler(name), cpus=2, quantum=0.05)

    def sleeper():
        yield Run(0.01)
        yield Block(100.0)
        yield Run(math.inf)

    s = machine.add_task(Task(GeneratorBehavior(sleeper()), weight=100,
                              name="sleeper"))
    hogs = [
        machine.add_task(Task(Infinite(), weight=1, name=f"h{i}"))
        for i in range(2)
    ]
    machine.run_until(5.0)
    assert s.service == pytest.approx(0.01)
    assert sum(h.service for h in hogs) == pytest.approx(10.0 - 0.01, abs=0.05)


@pytest.mark.parametrize(
    "name",
    [n for n in ALL if n not in ("linux-ts", "round-robin")],
)
def test_proportional_policies_track_weights_uniprocessor(name):
    """Every proportional-share policy gives 1:3 within tolerance on a
    uniprocessor (lottery gets statistical slack)."""
    machine = Machine(make_scheduler(name), cpus=1, quantum=0.05)
    machine.add_task(Task(Infinite(), weight=1, name="a"))
    b = machine.add_task(Task(Infinite(), weight=3, name="b"))
    machine.run_until(30.0)
    share_b = b.service / 30.0
    tol = 0.10 if "lottery" in name else 0.06
    assert share_b == pytest.approx(0.75, abs=tol), name
