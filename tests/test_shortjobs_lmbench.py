"""Tests for the short-job feeder (Fig. 5) and the lat_ctx ring (Table 1)."""

import pytest

from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
from repro.sim.costs import LMBENCH_COST, ZERO_COST
from repro.sim.machine import Machine
from repro.workloads.lmbench import TokenRing
from repro.workloads.shortjobs import ShortJobFeeder


def machine(**kw):
    return Machine(SurplusFairScheduler(), cpus=2, quantum=0.2, **kw)


class TestShortJobFeeder:
    def test_jobs_run_sequentially(self):
        m = machine()
        feeder = ShortJobFeeder(m, weight=5, job_cpu=0.3)
        m.run_until(5.0)
        # Completed jobs never overlap: each next arrival equals (or
        # follows) the previous exit.
        jobs = [t for t in feeder.jobs if t.exit_time is not None]
        for prev, nxt in zip(jobs, jobs[1:]):
            assert nxt.arrival_time >= prev.exit_time - 1e-9

    def test_each_job_consumes_exactly_job_cpu(self):
        m = machine()
        feeder = ShortJobFeeder(m, job_cpu=0.25)
        m.run_until(4.0)
        for t in feeder.jobs:
            if t.exit_time is not None:
                assert t.service == pytest.approx(0.25)

    def test_gap_delays_next_arrival(self):
        m = machine()
        feeder = ShortJobFeeder(m, job_cpu=0.1, gap=0.5)
        m.run_until(3.0)
        jobs = [t for t in feeder.jobs if t.exit_time is not None]
        for prev, nxt in zip(jobs, jobs[1:]):
            assert nxt.arrival_time == pytest.approx(prev.exit_time + 0.5)

    def test_total_service_sums_jobs(self):
        m = machine()
        feeder = ShortJobFeeder(m, job_cpu=0.2)
        m.run_until(3.0)
        assert feeder.total_service() == pytest.approx(
            sum(t.service for t in feeder.jobs)
        )

    def test_service_series_is_monotone(self):
        m = machine()
        feeder = ShortJobFeeder(m, job_cpu=0.2)
        m.run_until(3.0)
        series = feeder.service_series()
        values = [v for _, v in series]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_rejects_bad_parameters(self):
        m = machine()
        with pytest.raises(ValueError):
            ShortJobFeeder(m, job_cpu=0.0)
        with pytest.raises(ValueError):
            ShortJobFeeder(m, gap=-1.0)


class TestTokenRing:
    def test_ring_completes_requested_passes(self):
        m = machine(cost_model=ZERO_COST, sample_service=False)
        ring = TokenRing(m, nprocs=4, passes=100)
        ring.run(max_time=100.0)
        assert ring.pass_count == 100
        assert ring.done

    def test_zero_cost_machine_measures_zero_switch_time(self):
        m = machine(cost_model=ZERO_COST, sample_service=False)
        ring = TokenRing(m, nprocs=2, passes=200)
        assert ring.run() == pytest.approx(0.0, abs=1e-9)

    def test_switch_time_includes_decision_and_cache_costs(self):
        m = Machine(
            SurplusFairScheduler(),
            cpus=2,
            quantum=0.2,
            cost_model=LMBENCH_COST,
            sample_service=False,
            record_events=False,
        )
        ring = TokenRing(m, nprocs=2, passes=500, footprint_kb=16.0)
        t = ring.run()
        # Cache restoration for 16 KB alone is ~14 us.
        assert t > 10e-6

    def test_larger_rings_cost_more_under_live_counting(self):
        def run(n):
            m = Machine(
                LinuxTimeSharingScheduler(),
                cpus=2,
                quantum=0.2,
                cost_model=LMBENCH_COST,
                sample_service=False,
                record_events=False,
            )
            ring = TokenRing(m, nprocs=n, passes=400)
            return ring.run()

        assert run(16) > run(2)

    def test_work_cost_subtracted_from_measurement(self):
        m = machine(cost_model=ZERO_COST, sample_service=False)
        ring = TokenRing(m, nprocs=2, passes=100, work_cost=0.001)
        t = ring.run()
        assert t == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_parameters(self):
        m = machine()
        with pytest.raises(ValueError):
            TokenRing(m, nprocs=1, passes=10)
        with pytest.raises(ValueError):
            TokenRing(m, nprocs=2, passes=0)

    def test_switch_time_before_completion_raises(self):
        m = machine()
        ring = TokenRing(m, nprocs=2, passes=10_000)
        with pytest.raises(RuntimeError):
            ring.switch_time()
