"""Tests for schedule recording and the ASCII Gantt renderer."""

import pytest

from tests.conftest import add_inf
from repro.analysis.gantt import gantt_chart, occupancy
from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine


class TestRunIntervals:
    def test_intervals_recorded(self):
        m = Machine(SurplusFairScheduler(), cpus=1, quantum=0.2)
        add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(1.0)
        assert len(m.trace.run_intervals) >= 4
        for iv in m.trace.run_intervals:
            assert iv.end > iv.start
            assert iv.cpu == 0

    def test_intervals_cover_busy_time(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.2)
        for i in range(3):
            add_inf(m, 1, f"T{i}")
        m.run_until(2.0)
        # Vacated intervals plus currently-running partials cover the
        # busy time; completed intervals alone cover most of it.
        covered = sum(iv.end - iv.start for iv in m.trace.run_intervals)
        busy = sum(p.busy_time for p in m.processors)
        assert covered <= busy + 1e-9
        assert covered > busy - 2 * 0.2 - 1e-9  # at most one open quantum per CPU

    def test_recording_disabled(self):
        m = Machine(SurplusFairScheduler(), cpus=1, quantum=0.2,
                    record_events=False)
        add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(1.0)
        assert m.trace.run_intervals == []


class TestOccupancy:
    def test_majority_occupant_per_bucket(self):
        # Fixed-point tags keep equal-weight ties *exactly* equal, so
        # the two tasks alternate strictly (with float tags, ulp noise
        # in tag accumulation turns ties into a coin flip — the kernel's
        # integer arithmetic is what makes this deterministic).
        from repro.core.fixed_point import FixedTags

        m = Machine(SurplusFairScheduler(tag_math=FixedTags()), cpus=1,
                    quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(2.0)
        cells = occupancy(m, 0.0, 2.0, buckets=10)
        row = cells[0]
        assert set(row) == {a.tid, b.tid}
        assert all(x != y for x, y in zip(row, row[1:]))

    def test_float_tags_still_split_evenly(self):
        m = Machine(SurplusFairScheduler(), cpus=1, quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(2.0)
        row = occupancy(m, 0.0, 2.0, buckets=10)[0]
        assert sum(1 for tid in row if tid == a.tid) == 5
        assert sum(1 for tid in row if tid == b.tid) == 5

    def test_idle_buckets_are_none(self):
        from repro.sim.task import Task
        from repro.workloads.cpu_bound import FiniteCompute

        m = Machine(SurplusFairScheduler(), cpus=1, quantum=0.2)
        m.add_task(Task(FiniteCompute(0.5), weight=1, name="F"))
        m.run_until(1.0)
        cells = occupancy(m, 0.0, 1.0, buckets=10)
        assert cells[0][-1] is None  # machine idle after 0.5s
        assert cells[0][0] is not None

    def test_validation(self):
        m = Machine(SurplusFairScheduler(), cpus=1)
        with pytest.raises(ValueError):
            occupancy(m, 1.0, 1.0, 10)
        with pytest.raises(ValueError):
            occupancy(m, 0.0, 1.0, 0)


class TestGanttChart:
    def test_renders_rows_and_legend(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.2)
        add_inf(m, 1, "alpha")
        add_inf(m, 1, "beta")
        add_inf(m, 1, "gamma")
        m.run_until(2.0)
        out = gantt_chart(m, 0.0, 2.0, width=40)
        assert "cpu0 |" in out and "cpu1 |" in out
        assert "alpha" in out and "beta" in out

    def test_empty_schedule(self):
        m = Machine(SurplusFairScheduler(), cpus=1)
        assert gantt_chart(m) == "(no schedule recorded)"

    def test_sfq_spurts_visible_in_gantt(self):
        # The §4.3 "spurts": under SFQ a heavy thread occupies long
        # consecutive stretches; the Gantt row shows long glyph runs.
        m = Machine(StartTimeFairScheduler(), cpus=1, quantum=0.1)
        heavy = add_inf(m, 10, "heavy")
        add_inf(m, 1, "light")
        m.run_until(4.0)
        cells = occupancy(m, 0.0, 4.0, buckets=40)
        row = cells[0]
        longest = run = 0
        for tid in row:
            run = run + 1 if tid == heavy.tid else 0
            longest = max(longest, run)
        assert longest >= 5
