"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(2.0, fired.append, "b")
        engine.schedule_at(1.0, fired.append, "a")
        engine.schedule_at(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        engine = Engine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(1.0, fired.append, tag)
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_schedule_after_relative_delay(self):
        engine = Engine()
        seen = []
        engine.schedule_at(1.0, lambda: engine.schedule_after(2.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [3.0]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, fired.append, "x")
        engine.run()
        handle.cancel()
        assert fired == ["x"]

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        h1 = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert engine.pending == 1

    def test_pending_counter_tracks_fire_and_cancel(self):
        engine = Engine()
        h1 = engine.schedule_at(1.0, lambda: None)
        h2 = engine.schedule_at(2.0, lambda: None)
        engine.schedule_at(3.0, lambda: None)
        assert engine.pending == 3
        engine.step()  # fires h1
        assert engine.pending == 2
        h2.cancel()
        h2.cancel()  # double-cancel must not double-decrement
        assert engine.pending == 1
        h1.cancel()  # cancel after fire must not decrement
        assert engine.pending == 1
        engine.run()
        assert engine.pending == 0


class TestRunUntil:
    def test_processes_events_up_to_and_including_t_end(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, fired.append, "a")
        engine.schedule_at(2.0, fired.append, "b")
        engine.schedule_at(2.5, fired.append, "c")
        engine.run_until(2.0)
        assert fired == ["a", "b"]
        assert engine.now == 2.0

    def test_now_set_even_with_no_events(self):
        engine = Engine()
        engine.run_until(10.0)
        assert engine.now == 10.0

    def test_rejects_past_t_end(self):
        engine = Engine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.run_until(4.0)

    def test_events_scheduled_during_run_fire_if_in_window(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: engine.schedule_at(1.5, fired.append, "nested"))
        engine.run_until(2.0)
        assert fired == ["nested"]


class TestRun:
    def test_run_returns_fired_count(self):
        engine = Engine()
        for i in range(5):
            engine.schedule_at(float(i), lambda: None)
        assert engine.run() == 5

    def test_max_events_bounds_execution(self):
        engine = Engine()

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        fired = engine.run(max_events=10)
        assert fired == 10

    def test_events_fired_counter(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.events_fired == 1
