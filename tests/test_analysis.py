"""Tests for the analysis package: fairness, charts, tables, CSV, series."""


import pytest

from tests.conftest import add_inf
from repro.analysis.charts import bar_chart, line_chart, sparkline
from repro.analysis.csvout import write_rows, write_series
from repro.analysis.fairness import (
    gms_deviation,
    jains_index,
    longest_starvation,
    max_relative_unfairness,
    starvation_intervals,
)
from repro.analysis.tables import format_seconds, render_table
from repro.analysis.timeseries import (
    cumulative_series,
    rate_series,
    regular_times,
    window,
)
from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine


class TestFairness:
    def test_jains_index_perfectly_fair(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jains_index_unfair(self):
        assert jains_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_jains_index_empty(self):
        assert jains_index([]) == 1.0

    def test_gms_deviation_small_for_sfs(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3)]
        m.run_until(10.0)
        dev = gms_deviation(m)
        for task in tasks:
            assert abs(dev[task.tid]) < 0.5  # within a few quanta

    def test_gms_deviation_large_for_starving_sfq(self):
        # Example 1: plain SFQ deviates from GMS by ~the starved time.
        m = Machine(StartTimeFairScheduler(), cpus=2, quantum=0.001)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=1.0)
        m.run_until(2.0)
        dev = gms_deviation(m)
        assert dev[t1.tid] < -0.3

    def test_starvation_detects_flat_interval(self):
        m = Machine(StartTimeFairScheduler(), cpus=2, quantum=0.001)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=1.0)
        m.run_until(2.5)
        gap = longest_starvation(t1, 1.0, 2.5, resolution=0.01)
        assert gap == pytest.approx(0.9, abs=0.1)

    def test_no_starvation_for_continuously_served_task(self):
        m = Machine(SurplusFairScheduler(), cpus=1, quantum=0.1)
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(5.0)
        # Resolution of 0.3 >> alternation period 0.2: no flat window.
        assert longest_starvation(a, 0.0, 5.0, resolution=0.3) == 0.0

    def test_starvation_intervals_empty_for_degenerate_window(self):
        m = Machine(SurplusFairScheduler(), cpus=1)
        a = add_inf(m, 1, "A")
        m.run_until(1.0)
        assert starvation_intervals(a, 1.0, 1.0) == []

    def test_max_relative_unfairness_zero_for_identical(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        tasks = [add_inf(m, 1, f"T{i}") for i in range(2)]
        m.run_until(10.0)
        u = max_relative_unfairness(tasks, 1.0, 9.0)
        assert u < 0.1


class TestCharts:
    def test_line_chart_renders_series(self):
        out = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=5,
            title="demo",
        )
        assert "demo" in out
        assert "*" in out and "o" in out

    def test_line_chart_empty(self):
        assert "(no data)" in line_chart({}, title="t")

    def test_line_chart_flat_series(self):
        out = line_chart({"flat": [(0, 5), (1, 5)]}, width=10, height=3)
        assert "flat" in out

    def test_bar_chart(self):
        out = bar_chart({"x": 10.0, "y": 5.0}, width=10, title="bars")
        lines = out.splitlines()
        assert lines[0] == "bars"
        assert lines[1].count("#") > lines[2].count("#")

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart({})

    def test_sparkline(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] != s[-1]

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([2, 2]) == "▁▁"


class TestTables:
    def test_render_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}

    def test_float_formatting(self):
        out = render_table(["v"], [[0.000123456]])
        assert "e" in out.lower() or "0.0001" in out

    def test_format_seconds_units(self):
        assert format_seconds(0.7e-6) == "0.7 us"
        assert format_seconds(2e-3) == "2.00 ms"
        assert format_seconds(1.5) == "1.500 s"


class TestTimeseries:
    def test_regular_times(self):
        ts = regular_times(0.0, 1.0, 0.25)
        assert ts == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_regular_times_rejects_bad_step(self):
        with pytest.raises(ValueError):
            regular_times(0, 1, 0)

    def test_cumulative_and_rate(self):
        m = Machine(SurplusFairScheduler(), cpus=1)
        t = add_inf(m, 1, "A")
        m.run_until(2.0)
        series = cumulative_series(t, [0.0, 1.0, 2.0], scale=10.0)
        assert series[-1][1] == pytest.approx(20.0)
        rates = rate_series(series)
        assert rates[0][1] == pytest.approx(10.0)

    def test_window(self):
        points = [(0.0, 1), (1.0, 2), (2.0, 3)]
        assert window(points, 0.5, 2.0) == [(1.0, 2)]


class TestCsv:
    def test_write_rows(self, tmp_path):
        path = str(tmp_path / "out" / "rows.csv")
        write_rows(path, ["a", "b"], [[1, 2], [3, 4]])
        content = open(path).read().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2"

    def test_write_series(self, tmp_path):
        path = str(tmp_path / "series.csv")
        write_series(path, {"s": [(0.0, 1.0), (1.0, 2.0)]})
        content = open(path).read().splitlines()
        assert content[0] == "series,time,value"
        assert len(content) == 3
