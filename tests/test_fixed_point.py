"""Tests for kernel-style fixed-point tag arithmetic (§3.2)."""

import pytest

from tests.conftest import add_inf
from repro.core.fixed_point import FixedTags, FloatTags
from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine


class TestFloatTags:
    def test_finish_tag(self):
        tags = FloatTags()
        assert tags.finish_tag(1.0, 0.2, 2.0) == pytest.approx(1.1)

    def test_surplus(self):
        tags = FloatTags()
        assert tags.surplus(2.0, 1.5, 1.0) == pytest.approx(1.0)

    def test_never_needs_rebase(self):
        assert not FloatTags().needs_rebase(1e18)

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            FloatTags().finish_tag(0.0, 0.1, 0.0)


class TestFixedTags:
    def test_scale_factor(self):
        assert FixedTags(n=4).scale == 10_000

    def test_finish_tag_truncates_like_integer_division(self):
        tags = FixedTags(n=4)
        # q = 0.2 s -> 2000 units; phi = 3 -> 30000 scaled.
        # delta = 2000 * 10000 // 30000 = 666 (exact: 666.67).
        assert tags.finish_tag(0, 0.2, 3.0) == 666

    def test_surplus_scaled(self):
        tags = FixedTags(n=4)
        # phi=2 -> 20000; S - v = 50 units -> alpha = 1_000_000.
        assert tags.surplus(2.0, 100, 50) == 1_000_000

    def test_phi_scaled_minimum_one(self):
        # Extremely small phis must not scale to zero (division guard).
        assert FixedTags(n=2).phi_scaled(1e-9) == 1

    def test_needs_rebase_threshold(self):
        tags = FixedTags(n=4, wrap_bits=16)
        assert not tags.needs_rebase(2**15 - 1)
        assert tags.needs_rebase(2**15)

    def test_shift(self):
        assert FixedTags().shift(100, 30) == 70

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FixedTags(n=-1)
        with pytest.raises(ValueError):
            FixedTags(wrap_bits=4)


class TestFixedVsFloatScheduling:
    def _shares(self, tag_math, horizon=20.0):
        m = Machine(SurplusFairScheduler(tag_math=tag_math), cpus=2, quantum=0.2)
        tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3, 4)]
        m.run_until(horizon)
        total = sum(t.service for t in tasks)
        return [t.service / total for t in tasks]

    def test_adequate_scale_matches_float_reference(self):
        # §3.2: "a scaling factor of 10^4 [is] adequate for most purposes".
        float_shares = self._shares(None)
        fixed_shares = self._shares(FixedTags(n=4))
        for a, b in zip(float_shares, fixed_shares):
            assert a == pytest.approx(b, abs=0.03)

    def test_tiny_scale_degrades_allocation(self):
        # n=0 keeps no fractional digits: tags quantize to whole virtual
        # seconds and proportionality collapses.
        fixed_shares = self._shares(FixedTags(n=0))
        ideal = [0.1, 0.2, 0.3, 0.4]
        worst = max(abs(a - b) for a, b in zip(fixed_shares, ideal))
        assert worst > 0.05

    def test_scale_sweep_monotonically_improves(self):
        ideal = [0.1, 0.2, 0.3, 0.4]

        def err(n):
            shares = self._shares(FixedTags(n=n), horizon=10.0)
            return sum(abs(a - b) for a, b in zip(shares, ideal))

        assert err(4) <= err(1) + 1e-9


class TestWrapAround:
    def test_rebase_triggers_and_preserves_allocation(self):
        # A tiny wrap threshold forces frequent rebasing; the shares
        # must be unaffected (§3.2's wrap-around handling).
        tags = FixedTags(n=4, wrap_bits=16)  # wraps at 32768 tag units
        sched = SurplusFairScheduler(tag_math=tags)
        m = Machine(sched, cpus=2, quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 2, "B")
        c = add_inf(m, 1, "C")
        m.run_until(40.0)
        assert sched.rebase_count > 0
        total = a.service + b.service + c.service
        assert b.service / total == pytest.approx(0.5, abs=0.06)

    def test_rebase_keeps_tags_small(self):
        tags = FixedTags(n=4, wrap_bits=16)
        sched = StartTimeFairScheduler(tag_math=tags)
        m = Machine(sched, cpus=1, quantum=0.1)
        a = add_inf(m, 1, "A")
        m.run_until(60.0)
        # 60 s at phi=1 is 600k tag units; without rebasing S would be
        # far beyond the 32768 threshold.
        assert a.sched["S"] < 2 * 32768

    def test_rebase_shifts_blocked_tasks_too(self):
        import math
        from repro.sim.events import Block, Run
        from repro.sim.task import Task
        from repro.workloads.base import GeneratorBehavior

        tags = FixedTags(n=4, wrap_bits=16)
        sched = SurplusFairScheduler(tag_math=tags)
        m = Machine(sched, cpus=1, quantum=0.1)

        def gen():
            yield Run(0.1)
            yield Block(30.0)  # sleeps across several rebases
            yield Run(math.inf)

        sleeper = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="s"))
        add_inf(m, 1, "hog")
        m.run_until(35.0)
        assert sched.rebase_count > 0
        # The woken sleeper's tag must be near the (rebased) virtual
        # time, not off by multiples of the wrap threshold.
        assert abs(sleeper.sched["S"] - sched.virtual_time) < 32768
