"""Unit tests for the online invariant auditor.

Covers the check registry, the Auditor's wiring/validation, the
report/summary shapes, the skip logic (checks that are meaningless for
a given run refuse to fire rather than false-positive), and the spec /
metric / sweep integration paths. The fault-injection proof that every
check actually catches its target bug lives in
``test_audit_mutations.py``.
"""

import json
import pickle

import pytest

from repro.analysis.audit import (
    CHECKS,
    Auditor,
    AuditReport,
    AuditViolation,
    check_names,
)
from repro.analysis.audit.auditor import DEFAULT_MAX_VIOLATIONS
from repro.analysis.audit.checks import KNOWN_PARAMS, AuditCheck, audit_check
from repro.scenario import Scenario, group, run_cells, run_scenario, task
from repro.scenario.runner import build_machine

EXPECTED_CHECKS = [
    "bounded_lag",
    "monotone_vtime",
    "no_starvation",
    "resource_conservation",
    "service_conservation",
    "surplus_order",
]


def _scenario(**overrides):
    base = dict(
        name="audit-unit",
        scheduler="sfs",
        cpus=2,
        duration=4.0,
        quantum=0.05,
        tasks=(task("heavy", 4), *group(3, 1, "bg")),
        audit=True,
    )
    base.update(overrides)
    return Scenario(**base)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_six_checks_registered():
    assert check_names() == EXPECTED_CHECKS


def test_every_check_has_title_and_declared_params():
    for name, cls in CHECKS.items():
        assert cls.name == name
        assert cls.title
        for param in cls.params:
            assert param in KNOWN_PARAMS


def test_duplicate_check_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):

        @audit_check("service_conservation")
        class Dup(AuditCheck):
            """Duplicate."""


def test_docstringless_check_registration_rejected():
    with pytest.raises(ValueError, match="needs a docstring"):

        @audit_check("no_doc")
        class NoDoc(AuditCheck):
            pass


# ----------------------------------------------------------------------
# auditor wiring and validation
# ----------------------------------------------------------------------


def test_auditor_rejects_unknown_params():
    machine, _, _ = build_machine(_scenario())
    with pytest.raises(ValueError, match="unknown audit param"):
        Auditor(machine, params={"bogus_knob": 1})


def test_auditor_rejects_unknown_checks():
    machine, _, _ = build_machine(_scenario())
    with pytest.raises(ValueError, match="unknown audit check"):
        Auditor(machine, checks=["not_a_check"])


def test_auditor_rejects_double_install():
    machine, _, _ = build_machine(_scenario())
    auditor = Auditor(machine).install()
    with pytest.raises(RuntimeError, match="already installed"):
        auditor.install()


def test_auditor_subscribes_only_the_fused_probe():
    machine, _, _ = build_machine(_scenario())
    Auditor(machine).install()
    # service_conservation and bounded_lag are finalize-only, and the
    # three streaming checks (no_starvation, surplus_order,
    # monotone_vtime) share the single fused dispatch probe — so a
    # fully audited run adds exactly one observer to one hook.
    assert not machine.trace.on_event
    assert len(machine.on_dispatch) == 1
    assert not machine.on_requeue


def test_checks_subset_selection():
    machine, _, _ = build_machine(_scenario())
    auditor = Auditor(machine, checks=["service_conservation"]).install()
    assert not machine.on_dispatch  # the only check is finalize-only
    report = auditor.finalize(0.0)
    assert list(report.counts) == ["service_conservation"]
    assert not report.skipped


def test_violation_cap_truncates_storage_not_counts():
    machine, _, _ = build_machine(_scenario())
    auditor = Auditor(
        machine, checks=["service_conservation"], params={"max_violations": 2}
    )
    emit = auditor._emitter("service_conservation")
    for i in range(5):
        emit(float(i), f"boom {i}")
    report = auditor.finalize(5.0)
    assert report.total_violations == 5
    assert len(report.violations) == 2
    assert report.truncated == 3
    assert not report.ok


# ----------------------------------------------------------------------
# skip logic
# ----------------------------------------------------------------------


def test_exact_sfs_runs_all_checks():
    report = run_scenario(_scenario()).audit_report
    # resource_conservation needs declared demand vectors; every other
    # check executes on a plain CPU population under exact SFS.
    assert sorted(report.counts) == [
        name for name in EXPECTED_CHECKS if name != "resource_conservation"
    ]
    assert sorted(report.skipped) == ["resource_conservation"]
    assert report.ok
    assert report.dispatches_seen > 0
    assert report.events_seen > 0


def test_non_tagged_scheduler_skips_tag_checks():
    report = run_scenario(_scenario(scheduler="round-robin")).audit_report
    assert sorted(report.counts) == ["no_starvation", "service_conservation"]
    assert sorted(report.skipped) == [
        "bounded_lag",
        "monotone_vtime",
        "resource_conservation",
        "surplus_order",
    ]
    assert report.ok


def test_sfq_keeps_vtime_check_but_not_sfs_only_checks():
    report = run_scenario(_scenario(scheduler="sfq")).audit_report
    assert "monotone_vtime" in report.counts
    assert "bounded_lag" in report.skipped
    assert "surplus_order" in report.skipped
    assert report.ok


def test_audit_forces_event_recording_for_gms_replay():
    # Even when the scenario opts out of event recording (the high-N
    # server default), --audit turns it back on: bounded_lag replays
    # the timeline, so auditing without it would silently skip the
    # paper's central bound.
    report = run_scenario(_scenario(record_events=False)).audit_report
    assert "bounded_lag" in report.counts
    assert report.events_seen > 0
    assert report.ok


def test_auditor_on_non_recording_machine_skips_gms_replay():
    # Direct Auditor use (no runner) on a machine without an event
    # timeline degrades transparently: the check is skipped, with the
    # reason in the report.
    from repro.analysis.audit import Auditor
    from repro.core.sfs import SurplusFairScheduler
    from repro.sim.machine import Machine

    machine = Machine(SurplusFairScheduler(), cpus=2, record_events=False)
    auditor = Auditor(machine).install()
    machine.run_until(0.5)
    report = auditor.finalize(machine.now)
    assert "bounded_lag" in report.skipped
    assert "replay" in report.skipped["bounded_lag"]
    assert report.events_seen == 0


def test_heuristic_sfs_skips_exactness_checks():
    report = run_scenario(_scenario(scheduler="sfs-heuristic")).audit_report
    assert "surplus_order" in report.skipped
    assert "bounded_lag" in report.skipped
    assert report.ok


# ----------------------------------------------------------------------
# report shapes
# ----------------------------------------------------------------------


def test_report_render_and_summary():
    violation = AuditViolation("surplus_order", 1.25, "wrong pick")
    report = AuditReport(
        scheduler="SFS",
        events_seen=10,
        dispatches_seen=20,
        counts={"surplus_order": 1, "monotone_vtime": 0},
        skipped={"bounded_lag": "why"},
        violations=(violation,),
    )
    assert report.total_violations == 1
    assert not report.ok
    text = report.render()
    assert "1 VIOLATION(S)" in text
    assert "[surplus_order] t=1.25: wrong pick" in text
    assert "skipped (why)" in text
    summary = report.summary()
    assert summary["ok"] is False
    assert summary["examples"] == [violation.render()]
    json.dumps(summary)  # must stay JSON-safe for checkpoints/ssh


def test_summary_examples_capped_at_five():
    violations = tuple(
        AuditViolation("no_starvation", float(i), f"v{i}") for i in range(8)
    )
    report = AuditReport(
        scheduler="SFS", counts={"no_starvation": 8}, violations=violations
    )
    assert len(report.summary()["examples"]) == 5
    assert DEFAULT_MAX_VIOLATIONS >= 5


# ----------------------------------------------------------------------
# scenario spec integration
# ----------------------------------------------------------------------


def test_audit_metric_requires_audit_flag():
    with pytest.raises(ValueError, match="audit"):
        _scenario(audit=False, metrics=("audit",))


def test_audit_params_require_audit_flag():
    with pytest.raises(ValueError, match="audit"):
        _scenario(audit=False, audit_params={"lag_factor": 4.0})


def test_unknown_audit_param_rejected_at_spec_time():
    with pytest.raises(ValueError, match="bogus"):
        _scenario(audit_params={"bogus": 1})


def test_unknown_audit_check_rejected_at_spec_time():
    with pytest.raises(ValueError, match="nope"):
        _scenario(audit_params={"checks": ("nope",)})


def test_audit_params_thread_through_run_scenario():
    result = run_scenario(
        _scenario(
            audit_params={
                "surplus_check_every": 1,
                "checks": ("surplus_order", "service_conservation"),
            }
        )
    )
    report = result.audit_report
    assert sorted(report.counts) == ["service_conservation", "surplus_order"]
    assert report.ok


def test_no_audit_means_no_report_and_metric_raises():
    result = run_scenario(_scenario(audit=False))
    assert result.audit_report is None
    from repro.scenario.result import summarize

    with pytest.raises(ValueError, match="audit"):
        summarize(result, ("audit",))


def test_audited_scenario_pickles():
    scn = _scenario(audit_params={"surplus_check_every": 4})
    clone = pickle.loads(pickle.dumps(scn))
    assert clone.audit and clone.audit_params["surplus_check_every"] == 4


# ----------------------------------------------------------------------
# sweep integration: the audit metric crosses the process pool
# ----------------------------------------------------------------------


def test_audit_metric_survives_worker_pool():
    scn = _scenario(duration=2.0)
    cells = run_cells([scn], ("shares", "audit"), workers=2)
    summary = cells[0].metrics["audit"]
    assert summary["ok"] is True
    assert summary["scheduler"] == "SFS"
    assert sorted(summary["counts"]) == [
        name for name in EXPECTED_CHECKS if name != "resource_conservation"
    ]
    json.dumps(summary)


def test_audit_determinism_same_report_twice():
    first = run_scenario(_scenario()).audit_report
    second = run_scenario(_scenario()).audit_report
    assert first.summary() == second.summary()
