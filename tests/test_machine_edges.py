"""Edge-case tests for the machine: zero-length segments, exact ties,
heavy churn stress, and API misuse."""

import math

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.sim.events import Block, Exit, Run
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskState
from repro.workloads.base import Behavior, GeneratorBehavior
from repro.workloads.cpu_bound import Infinite


def machine(cpus=1, quantum=0.2, **kw):
    return Machine(SurplusFairScheduler(), cpus=cpus, quantum=quantum, **kw)


class TestZeroLengthSegments:
    def test_zero_run_exits_immediately(self):
        m = machine()
        t = m.add_task(Task(GeneratorBehavior(iter([Run(0.0)])), weight=1,
                            name="z"))
        m.run_until(1.0)
        assert t.state is TaskState.EXITED
        assert t.service == 0.0

    def test_zero_block_is_a_yield(self):
        m = machine()

        def gen():
            yield Run(0.05)
            yield Block(0.0)  # sched_yield-like
            yield Run(0.05)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="y"))
        m.run_until(1.0)
        assert t.state is TaskState.EXITED
        assert t.service == pytest.approx(0.1)

    def test_immediate_exit_behavior(self):
        m = machine()
        t = m.add_task(Task(GeneratorBehavior(iter([Exit()])), weight=1,
                            name="e"))
        m.run_until(0.5)
        assert t.state is TaskState.EXITED
        assert t.service == 0.0

    def test_negative_segment_durations_rejected(self):
        with pytest.raises(ValueError):
            Run(-0.1)
        with pytest.raises(ValueError):
            Block(-0.1)


class TestSegmentQuantumBoundary:
    def test_segment_ending_exactly_at_quantum_end(self):
        # Run(0.2) with quantum 0.2: the segment completes (does not
        # get preempted into a zombie re-dispatch).
        m = machine(quantum=0.2)

        def gen():
            yield Run(0.2)
            yield Exit()

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="x"))
        m.run_until(1.0)
        assert t.state is TaskState.EXITED
        assert t.exit_time == pytest.approx(0.2)
        assert t.preempt_count == 0

    def test_segment_slightly_longer_than_quantum(self):
        m = machine(quantum=0.2)

        def gen():
            yield Run(0.21)
            yield Exit()

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="x"))
        m.run_until(1.0)
        assert t.state is TaskState.EXITED
        assert t.preempt_count == 1
        assert t.service == pytest.approx(0.21)


class TestApiMisuse:
    def test_task_cannot_arrive_twice(self):
        m = machine()
        t = add_inf(m, 1, "A")
        with pytest.raises(ValueError):
            m.add_task(t)

    def test_behavior_returning_garbage_raises(self):
        class Bad(Behavior):
            def start(self, now):
                return Run(0.1)

            def next_segment(self, now):
                return "lunch break"

        m = machine()
        m.add_task(Task(Bad(), weight=1, name="bad"))
        with pytest.raises(TypeError):
            m.run_until(1.0)

    def test_bad_initial_segment_raises(self):
        class Bad(Behavior):
            def start(self, now):
                return 42

            def next_segment(self, now):  # pragma: no cover
                return Exit()

        m = machine()
        m.add_task(Task(Bad(), weight=1, name="bad"))
        with pytest.raises(TypeError):
            m.run_until(1.0)

    def test_task_weight_validation(self):
        with pytest.raises(ValueError):
            Task(Infinite(), weight=0)
        with pytest.raises(ValueError):
            Task(Infinite(), weight=-1)
        with pytest.raises(ValueError):
            Task(Infinite(), weight=1, footprint_kb=-1)

    def test_weight_setter_validation(self):
        t = Task(Infinite(), weight=1)
        with pytest.raises(ValueError):
            t.weight = 0


class TestDeadTaskGuards:
    """Control operations landing on already-exited tasks (Fig. 4-style
    scripts where a set_weight_at fires after a kill_task_at)."""

    def test_set_weight_after_kill_is_a_noop(self):
        m = machine()
        t = add_inf(m, 4, "victim")
        m.kill_task_at(t, 1.0)
        m.set_weight_at(t, 99.0, 2.0)
        m.run_until(3.0)
        assert t.state is TaskState.EXITED
        assert t.weight == 4  # the dead task's weight was not mutated

    def test_change_weight_on_exited_does_not_notify_scheduler(self):
        notified = []
        m = machine()
        t = add_inf(m, 2, "victim")
        m.run_until(0.5)
        m.kill_task(t)
        orig = m.scheduler.on_weight_change
        m.scheduler.on_weight_change = (
            lambda *a, **k: notified.append(a) or orig(*a, **k)
        )
        m.change_weight(t, 7.0)
        assert notified == []
        assert t.weight == 2

    def test_kill_before_arrival_prevents_arrival(self):
        m = machine()
        t = m.add_task(Task(Infinite(), weight=1, name="late"), at=2.0)
        m.kill_task_at(t, 1.0)
        m.run_until(3.0)
        assert t.state is TaskState.EXITED
        assert t.arrival_time is None
        assert t not in m.tasks  # never resurrected by the arrival event
        assert t.service == 0.0
        assert m.live_count == 0

    def test_signal_after_exit_is_a_noop(self):
        m = machine()

        def gen():
            yield Run(0.1)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="b"))
        m.run_until(0.5)
        assert t.state is TaskState.EXITED
        m.signal(t)  # lost, like a condition variable with no waiter
        m.run_until(1.0)
        assert t.state is TaskState.EXITED

    def test_double_kill_is_idempotent_for_live_count(self):
        m = machine()
        t = add_inf(m, 1, "once")
        m.run_until(0.1)
        m.kill_task(t)
        m.kill_task(t)
        assert m.live_count == 0


class TestIncrementalAccounting:
    """live_count is maintained incrementally; it must always equal the
    O(n) scan it replaced."""

    @staticmethod
    def scan(m):
        return sum(1 for t in m.tasks if t.state is not TaskState.EXITED)

    def test_live_count_matches_scan_through_churn(self):
        from repro.workloads.cpu_bound import FiniteCompute

        m = machine(cpus=2, quantum=0.05)

        def blinker():
            while True:
                yield Run(0.02)
                yield Block(0.03)

        tasks = []
        for i in range(20):
            if i % 3 == 0:
                beh = GeneratorBehavior(blinker())
            else:
                beh = FiniteCompute(0.05 * (i % 5 + 1))
            tasks.append(m.add_task(Task(beh, weight=1, name=f"c{i}"),
                                    at=0.1 * i))
        m.kill_task_at(tasks[0], 0.9)
        m.kill_task_at(tasks[3], 1.7)
        for stop in (0.5, 1.0, 1.5, 2.5, 5.0):
            m.run_until(stop)
            assert m.live_count == self.scan(m)

    def test_live_count_counts_blocked_tasks(self):
        m = machine()

        def sleeper():
            yield Block(math.inf)

        t = m.add_task(Task(GeneratorBehavior(sleeper()), weight=1,
                            name="s"))
        m.run_until(0.1)
        assert t.state is TaskState.BLOCKED
        assert m.live_count == 1
        m.kill_task(t)
        assert m.live_count == 0

    def test_immediate_exit_behavior_never_counts(self):
        m = machine()
        m.add_task(Task(GeneratorBehavior(iter([Exit()])), weight=1,
                        name="e"))
        m.run_until(0.5)
        assert m.live_count == self.scan(m) == 0


class TestServiceSampleDecimation:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            machine(service_sample_interval=-0.1)

    def test_decimation_preserves_totals_and_schedule(self):
        def build(interval):
            m = machine(cpus=2, quantum=0.05,
                        service_sample_interval=interval)
            ts = [add_inf(m, w, f"w{w}") for w in (1, 2, 4)]
            m.run_until(5.0)
            return m, ts

        m0, exact = build(0.0)
        m1, decimated = build(1.0)
        for a, b in zip(exact, decimated):
            assert a.service == b.service  # identical scheduling
            assert len(b.series) < len(a.series)  # but far fewer points
        assert m0.engine.events_fired == m1.engine.events_fired


class TestStress:
    def test_hundred_tasks_heavy_blocking_churn(self):
        m = machine(cpus=4, quantum=0.02, sample_service=False,
                    record_events=False)

        def blinker(run_len, sleep_len):
            def gen():
                while True:
                    yield Run(run_len)
                    yield Block(sleep_len)
            return gen()

        tasks = []
        for i in range(100):
            beh = GeneratorBehavior(blinker(0.005 + (i % 7) * 0.003,
                                            0.01 + (i % 5) * 0.007))
            tasks.append(m.add_task(Task(beh, weight=(i % 4) + 1,
                                         name=f"t{i}")))
        m.run_until(5.0)
        total = sum(t.service for t in tasks)
        assert 0 < total <= 20.0 + 1e-6
        # No task got stuck in a bogus state.
        for t in tasks:
            assert t.state in (TaskState.RUNNING, TaskState.RUNNABLE,
                               TaskState.BLOCKED)

    def test_many_simultaneous_arrivals_and_exits(self):
        from repro.workloads.cpu_bound import FiniteCompute

        m = machine(cpus=2, quantum=0.05)
        tasks = [
            m.add_task(Task(FiniteCompute(0.1), weight=1, name=f"f{i}"))
            for i in range(50)
        ]
        m.run_until(10.0)
        assert all(t.state is TaskState.EXITED for t in tasks)
        assert sum(t.service for t in tasks) == pytest.approx(5.0)

    def test_run_until_is_resumable(self):
        m = machine()
        t = add_inf(m, 1, "A")
        for step in range(1, 11):
            m.run_until(step * 0.5)
            assert t.service == pytest.approx(step * 0.5)
