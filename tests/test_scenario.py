"""Tests for the declarative scenario layer (spec, runner, sweep)."""

import pytest

from repro.scenario import (
    Compute,
    Kill,
    LatCtxRing,
    Probe,
    Scenario,
    SetWeight,
    ShortJobs,
    Sweep,
    group,
    run_scenario,
    run_sweep,
    summarize,
    sweep_scenarios,
    task,
)
from repro.schedulers.registry import SCHEDULERS, make_scheduler, scheduler_names


def _probe_early(machine, tasks):
    return ("early", machine.now)


def _probe_late(machine, tasks):
    return ("late", machine.now)


def _probe_none(machine, tasks):
    return None


def _basic(scheduler: str = "sfs", **overrides) -> Scenario:
    base = Scenario(
        name="basic",
        scheduler=scheduler,
        duration=3.0,
        tasks=(task("heavy", 2), *group(3, 1, "bg")),
    )
    return base.with_(**overrides) if overrides else base


class TestScenarioRoundTrip:
    @pytest.mark.parametrize("name", scheduler_names())
    def test_every_registry_scheduler_round_trips(self, name):
        """A Scenario runs under every registered policy and the machine
        stays fully utilized (4 always-runnable tasks on 2 CPUs)."""
        result = run_scenario(_basic(scheduler=name))
        total = sum(t.service for t in result.tasks.values())
        assert total == pytest.approx(result.capacity(), rel=1e-6), name
        assert result.now == pytest.approx(3.0)

    def test_scheduler_params_forwarded(self):
        result = run_scenario(
            _basic(scheduler="sfq", scheduler_params={"readjust": True})
        )
        assert result.scheduler.name == "SFQ+readjust"

    def test_deterministic_across_runs(self):
        scn = _basic(quantum_jitter=0.05, jitter_seed=3)
        a = run_scenario(scn)
        b = run_scenario(scn)
        assert [t.service for t in a.tasks.values()] == [
            t.service for t in b.tasks.values()
        ]


class TestResultSurface:
    def test_shares_and_jains(self):
        result = run_scenario(_basic())
        shares = result.shares()
        assert shares["heavy"] == pytest.approx(0.4, abs=0.02)
        assert sum(shares.values()) == pytest.approx(1.0, rel=1e-6)
        assert result.jains() > 0.99

    def test_series_and_group_service(self):
        result = run_scenario(_basic())
        curves = result.sampled_series(["heavy"], step=0.5)
        assert curves["heavy"][0] == (0.0, 0.0)
        assert curves["heavy"][-1][0] == pytest.approx(3.0)
        assert result.group_service("bg") == pytest.approx(
            sum(result.service(f"bg-{i + 1}") for i in range(3))
        )

    def test_metrics_eagerly_collected(self):
        result = run_scenario(
            _basic(metrics=("jains", "context_switches", "decisions"))
        )
        assert set(result.metrics) == {"jains", "context_switches", "decisions"}
        assert result.metrics["decisions"] > 0

    def test_unknown_metric_rejected(self):
        result = run_scenario(_basic())
        with pytest.raises(ValueError, match="unknown metric"):
            summarize(result, ("nope",))


class TestEventsProbesDrivers:
    def test_kill_event_stops_service(self):
        result = run_scenario(
            _basic(events=(Kill("heavy", at=1.0),))
        )
        assert result.task("heavy").exit_time == pytest.approx(1.0)
        assert result.service("heavy") < result.service("bg-1")

    def test_set_weight_event_changes_share(self):
        scn = Scenario(
            name="weights",
            duration=10.0,
            tasks=(task("a", 1), task("b", 1)),
            cpus=1,
            events=(SetWeight("a", 3.0, at=0.0),),
        )
        result = run_scenario(scn)
        assert result.share("a") == pytest.approx(0.75, abs=0.05)

    def test_probe_values_in_declaration_order(self):
        scn = _basic(probes=(Probe(2.0, _probe_late), Probe(1.0, _probe_early)))
        result = run_scenario(scn)
        # Values align with declaration order even though execution is
        # sorted by time.
        assert result.probes == [("late", 2.0), ("early", 1.0)]

    def test_probe_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="beyond duration"):
            run_scenario(_basic(probes=(Probe(99.0, _probe_none),)))

    def test_short_jobs_driver(self):
        scn = Scenario(
            name="shorts",
            duration=5.0,
            tasks=(task("T1", 1),),
            drivers=(ShortJobs(name="S", weight=1, job_cpu=0.1),),
        )
        result = run_scenario(scn)
        feeder = result.driver("S")
        assert feeder.completed > 5
        assert feeder.total_service() > 0

    def test_ring_driver_self_terminates(self):
        scn = Scenario(
            name="ring",
            scheduler="linux-ts",
            cost_model="lmbench",
            duration=None,
            drivers=(LatCtxRing(name="r", nprocs=2, passes=50),),
        )
        result = run_scenario(scn)
        ring = result.driver("r")
        assert ring.done
        assert ring.switch_time() > 0

    def test_ring_run_stops_exactly_at_completion(self):
        """duration=None runs must not pad the measured window with
        idle time past driver completion (shares/capacity depend on it)."""
        scn = Scenario(
            name="ring-window",
            scheduler="linux-ts",
            cost_model="lmbench",
            duration=None,
            drivers=(LatCtxRing(name="r", nprocs=2, passes=50),),
        )
        result = run_scenario(scn)
        assert result.now == result.driver("r").finished_at
        assert result.duration == result.now


class TestValidation:
    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate task names"):
            Scenario(name="dup", duration=1.0,
                     tasks=(task("a"), task("a")))

    def test_event_referencing_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            Scenario(name="bad", duration=1.0, tasks=(task("a"),),
                     events=(Kill("ghost", at=1.0),))

    def test_duration_required_without_ring(self):
        with pytest.raises(ValueError, match="duration"):
            Scenario(name="open-ended", tasks=(task("a"),))

    def test_unknown_cost_model_rejected(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            run_scenario(_basic(cost_model="free"))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_scenario(_basic(scheduler="cfs"))

    def test_nested_task_groups_flattened(self):
        scn = Scenario(
            name="nested", duration=1.0,
            tasks=(task("solo"), group(2, 1, "g")),
        )
        assert [t.name for t in scn.tasks] == ["solo", "g-1", "g-2"]

    def test_compute_behavior_exits(self):
        scn = Scenario(name="finite", duration=5.0, cpus=1,
                       tasks=(task("job", 1, Compute(0.5)),))
        result = run_scenario(scn)
        assert result.task("job").exit_time is not None
        assert result.service("job") == pytest.approx(0.5)

    def test_unknown_metric_rejected_at_construction(self):
        # A typo must fail before any simulation runs (it used to
        # surface only from summarize(), after the run completed).
        with pytest.raises(ValueError, match="unknown metric"):
            _basic(metrics=("jians",))

    def test_unknown_sweep_metric_rejected_at_construction(self):
        from repro.scenario import Sweep

        with pytest.raises(ValueError, match="unknown metric"):
            Sweep(base=_basic(), metrics=("shares", "nope"))

    def test_run_cells_rejects_unknown_metric(self):
        from repro.scenario import run_cells

        with pytest.raises(ValueError, match="unknown metric"):
            run_cells([_basic()], ("nope",), workers=0)


class TestRegistryDecorator:
    def test_register_rejects_duplicate_names(self):
        from repro.schedulers.registry import register

        with pytest.raises(ValueError, match="already registered"):
            register("sfs")(lambda **kw: None)

    def test_variants_share_one_factory(self):
        plain = make_scheduler("sfq")
        variant = make_scheduler("sfq-readjust")
        assert type(plain) is type(variant)
        assert plain.name != variant.name

    def test_overrides_beat_presets(self):
        sched = make_scheduler("sfq-readjust", readjust=False)
        assert sched.name == "SFQ"

    def test_all_names_present(self):
        assert set(SCHEDULERS) >= {
            "sfs", "sfs-noreadjust", "sfs-affinity", "sfs-heuristic",
            "hierarchical-sfs", "sfq", "sfq-readjust", "gms-reference",
            "linux-ts", "stride", "stride-readjust", "wfq", "wfq-readjust",
            "bvt", "bvt-readjust", "lottery", "lottery-readjust",
            "round-robin",
        }


class TestSweep:
    def _sweep(self, metrics=("shares", "jains")) -> Sweep:
        return Sweep(
            base=Scenario(
                name="grid",
                duration=2.0,
                tasks=(task("heavy", 2), *group(2, 1, "bg")),
            ),
            schedulers=("sfs", "sfq", "stride"),
            cpus=(1, 2),
            metrics=metrics,
        )

    def test_grid_expansion_order_is_deterministic(self):
        cells = sweep_scenarios(self._sweep())
        coords = [(s.scheduler, s.cpus) for s in cells]
        assert coords == [
            ("sfs", 1), ("sfs", 2),
            ("sfq", 1), ("sfq", 2),
            ("stride", 1), ("stride", 2),
        ]

    def test_parallel_matches_serial(self):
        sweep = self._sweep()
        parallel = run_sweep(sweep)  # process pool (or fallback)
        serial = run_sweep(sweep, workers=0)
        assert len(parallel) == 6
        assert [
            (c.index, c.scheduler, c.cpus, c.metrics) for c in parallel
        ] == [
            (c.index, c.scheduler, c.cpus, c.metrics) for c in serial
        ]

    def test_cells_carry_requested_metrics(self):
        cells = run_sweep(self._sweep(metrics=("jains",)), workers=0)
        for cell in cells:
            assert set(cell.metrics) == {"jains"}
            assert 0.0 < cell.metrics["jains"] <= 1.0

    def test_empty_axes_inherit_base(self):
        sweep = Sweep(base=_basic(), metrics=("jains",))
        cells = sweep_scenarios(sweep)
        assert len(cells) == 1
        assert cells[0].scheduler == "sfs"
        assert cells[0].cpus == 2

    def test_base_scheduler_params_kept_only_for_base_policy(self):
        base = _basic(
            scheduler="sfs-heuristic",
            scheduler_params={"scan_depth": 5},
        )
        cells = sweep_scenarios(
            Sweep(base=base, schedulers=("sfs-heuristic", "sfq"))
        )
        by_sched = {c.scheduler: c for c in cells}
        assert by_sched["sfs-heuristic"].scheduler_params == {"scan_depth": 5}
        assert by_sched["sfq"].scheduler_params == {}
        # and the params actually reach the scheduler
        result = run_scenario(by_sched["sfs-heuristic"])
        assert result.scheduler.scan_depth == 5


class TestSchedulerParamValidation:
    """scheduler_params keys are checked against the policy constructor
    at Scenario construction, not at run time."""

    def test_typo_rejected_at_construction(self):
        with pytest.raises(ValueError, match="scan_dpeth"):
            _basic(scheduler="sfs-heuristic", scheduler_params={"scan_dpeth": 3})

    def test_error_lists_accepted_params(self):
        with pytest.raises(ValueError, match="scan_depth"):
            _basic(scheduler="sfs-heuristic", scheduler_params={"bogus": 1})

    def test_valid_params_accepted(self):
        scn = _basic(
            scheduler="sfs-heuristic", scheduler_params={"scan_depth": 3}
        )
        assert scn.scheduler_params == {"scan_depth": 3}

    def test_params_for_paramless_policy_rejected(self):
        with pytest.raises(ValueError, match="round-robin"):
            _basic(scheduler="round-robin", scheduler_params={"anything": 1})

    def test_unregistered_scheduler_skips_param_check(self):
        # unknown policies must still fail at *run* time with the
        # canonical message (see test_unknown_scheduler_rejected), so
        # construction cannot reject them early
        scn = _basic(scheduler="cfs", scheduler_params={"whatever": 1})
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_scenario(scn)

    def test_introspection_surface(self):
        from repro.schedulers.registry import scheduler_params_for

        params = scheduler_params_for("sfs")
        assert params is not None and "readjust" in params
        assert scheduler_params_for("round-robin") == frozenset()
        assert scheduler_params_for("cfs") is None
