"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.sfs import SurplusFairScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import FiniteCompute, Infinite


@pytest.fixture
def sfs_machine() -> Machine:
    """A 2-CPU machine running SFS with the paper's 200 ms quantum."""
    return Machine(SurplusFairScheduler(), cpus=2, quantum=0.2)


def add_inf(machine: Machine, weight: float, name: str, at: float = 0.0) -> Task:
    """Add a compute-bound (Inf) task."""
    return machine.add_task(Task(Infinite(), weight=weight, name=name), at=at)


def add_finite(
    machine: Machine, cpu: float, weight: float, name: str, at: float = 0.0
) -> Task:
    """Add a finite compute job."""
    return machine.add_task(
        Task(FiniteCompute(cpu), weight=weight, name=name), at=at
    )


def total_service(tasks) -> float:
    return sum(t.service for t in tasks)
