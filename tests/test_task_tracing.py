"""Unit tests for the Task record and Trace collection."""

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.sim import tracing
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskState
from repro.sim.tracing import Trace, TraceEvent
from repro.workloads.cpu_bound import Infinite


class TestTask:
    def test_unique_increasing_tids(self):
        a = Task(Infinite(), weight=1)
        b = Task(Infinite(), weight=1)
        assert b.tid == a.tid + 1

    def test_default_name_from_tid(self):
        t = Task(Infinite(), weight=1)
        assert t.name == f"task{t.tid}"

    def test_initial_state(self):
        t = Task(Infinite(), weight=2.5)
        assert t.state is TaskState.NEW
        assert t.phi == 2.5
        assert t.service == 0.0
        assert not t.is_runnable

    def test_is_runnable_states(self):
        t = Task(Infinite(), weight=1)
        t.state = TaskState.RUNNABLE
        assert t.is_runnable
        t.state = TaskState.RUNNING
        assert t.is_runnable
        t.state = TaskState.BLOCKED
        assert not t.is_runnable

    def test_repr_contains_essentials(self):
        t = Task(Infinite(), weight=3, name="web")
        out = repr(t)
        assert "web" in out and "w=3" in out

    def test_ts_priority_stored(self):
        t = Task(Infinite(), weight=1, ts_priority=35)
        assert t.ts_priority == 35


class TestTrace:
    def test_events_between(self):
        trace = Trace()
        t = Task(Infinite(), weight=1)
        trace.record(1.0, tracing.ARRIVE, t)
        trace.record(2.0, tracing.BLOCK, t)
        trace.record(3.0, tracing.WAKE, t)
        windowed = list(trace.events_between(1.5, 2.5))
        assert len(windowed) == 1
        assert windowed[0].kind == tracing.BLOCK

    def test_recording_can_be_disabled(self):
        trace = Trace(record_events=False)
        t = Task(Infinite(), weight=1)
        trace.record(1.0, tracing.ARRIVE, t)
        trace.record_run(0, t.tid, 0.0, 1.0)
        assert trace.events == []
        assert trace.run_intervals == []

    def test_zero_length_run_interval_dropped(self):
        trace = Trace()
        trace.record_run(0, 1, 2.0, 2.0)
        assert trace.run_intervals == []

    def test_summary_keys(self):
        trace = Trace()
        summary = trace.summary()
        assert set(summary) >= {
            "context_switches",
            "dispatches",
            "decisions",
            "preemptions",
            "overhead_time",
        }

    def test_machine_populates_counters(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        add_inf(m, 1, "C")
        m.run_until(2.0)
        s = m.trace.summary()
        assert s["dispatches"] > 10
        assert s["decisions"] >= s["dispatches"]
        assert s["preemptions"] > 5

    def test_trace_event_is_immutable(self):
        ev = TraceEvent(1.0, tracing.ARRIVE, 1, 1.0)
        with pytest.raises(AttributeError):
            ev.time = 2.0
