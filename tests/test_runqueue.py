"""Tests for the sorted run-queue structure (§3.1's three-queue substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.runqueue import SortedTaskList
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite


def make_tasks(weights):
    return [Task(Infinite(), weight=w) for w in weights]


class TestBasicOps:
    def test_add_keeps_key_order(self):
        q = SortedTaskList(key=lambda t: t.weight)
        tasks = make_tasks([3, 1, 2])
        for t in tasks:
            q.add(t)
        assert [t.weight for t in q] == [1, 2, 3]

    def test_ties_broken_by_tid(self):
        q = SortedTaskList(key=lambda t: t.weight)
        a, b = make_tasks([1, 1])
        q.add(b)
        q.add(a)
        assert list(q) == [a, b]  # a has the smaller tid

    def test_head_is_minimum(self):
        q = SortedTaskList(key=lambda t: t.weight)
        tasks = make_tasks([5, 2, 9])
        for t in tasks:
            q.add(t)
        assert q.head() is tasks[1]

    def test_head_empty_is_none(self):
        q = SortedTaskList(key=lambda t: t.weight)
        assert q.head() is None

    def test_remove_by_identity(self):
        q = SortedTaskList(key=lambda t: t.weight)
        tasks = make_tasks([1, 2, 3])
        for t in tasks:
            q.add(t)
        q.remove(tasks[1])
        assert list(q) == [tasks[0], tasks[2]]

    def test_remove_missing_raises(self):
        q = SortedTaskList(key=lambda t: t.weight)
        (task,) = make_tasks([1])
        with pytest.raises(ValueError):
            q.remove(task)

    def test_discard_returns_presence(self):
        q = SortedTaskList(key=lambda t: t.weight)
        (task,) = make_tasks([1])
        assert q.discard(task) is False
        q.add(task)
        assert q.discard(task) is True
        assert len(q) == 0

    def test_contains_by_identity(self):
        q = SortedTaskList(key=lambda t: t.weight)
        a, b = make_tasks([1, 1])
        q.add(a)
        assert a in q
        assert b not in q


class TestKeyChanges:
    def test_reposition_restores_order_after_key_change(self):
        q = SortedTaskList(key=lambda t: t.sched.get("x", 0))
        tasks = make_tasks([1, 1, 1])
        for i, t in enumerate(tasks):
            t.sched["x"] = i
            q.add(t)
        tasks[0].sched["x"] = 10
        q.reposition(tasks[0])
        assert list(q) == [tasks[1], tasks[2], tasks[0]]
        assert q.is_sorted()

    def test_resort_insertion_fixes_all_stale_keys(self):
        q = SortedTaskList(key=lambda t: t.sched.get("x", 0))
        tasks = make_tasks([1] * 5)
        for i, t in enumerate(tasks):
            t.sched["x"] = i
            q.add(t)
        for i, t in enumerate(tasks):
            t.sched["x"] = 5 - i  # reverse everything
        q.resort_insertion()
        assert q.is_sorted()
        assert [t.sched["x"] for t in q] == [1, 2, 3, 4, 5]

    def test_resort_on_sorted_list_moves_nothing(self):
        q = SortedTaskList(key=lambda t: t.sched.get("x", 0))
        for i, t in enumerate(make_tasks([1] * 4)):
            t.sched["x"] = i
            q.add(t)
        assert q.resort_insertion() == 0


class TestPeeks:
    def test_peek_n_returns_smallest_keys(self):
        q = SortedTaskList(key=lambda t: t.weight)
        tasks = make_tasks([4, 1, 3, 2])
        for t in tasks:
            q.add(t)
        assert [t.weight for t in q.peek_n(2)] == [1, 2]

    def test_peek_tail_n_returns_largest_keys(self):
        q = SortedTaskList(key=lambda t: t.weight)
        for t in make_tasks([4, 1, 3, 2]):
            q.add(t)
        assert [t.weight for t in q.peek_tail_n(2)] == [3, 4]

    def test_peek_tail_zero(self):
        q = SortedTaskList(key=lambda t: t.weight)
        assert q.peek_tail_n(0) == []

    def test_peek_larger_than_len(self):
        q = SortedTaskList(key=lambda t: t.weight)
        for t in make_tasks([2, 1]):
            q.add(t)
        assert len(q.peek_n(10)) == 2


@given(st.lists(st.floats(min_value=0.1, max_value=100, allow_nan=False), min_size=0, max_size=30))
def test_property_insertion_order_matches_sorted(ws):
    q = SortedTaskList(key=lambda t: t.weight)
    tasks = make_tasks(ws)
    for t in tasks:
        q.add(t)
    expected = sorted(tasks, key=lambda t: (t.weight, t.tid))
    assert list(q) == expected


@given(
    st.lists(st.floats(min_value=0.1, max_value=100, allow_nan=False), min_size=1, max_size=20),
    st.data(),
)
def test_property_random_removals_keep_order(ws, data):
    q = SortedTaskList(key=lambda t: t.weight)
    tasks = make_tasks(ws)
    for t in tasks:
        q.add(t)
    removals = data.draw(st.integers(min_value=0, max_value=len(tasks)))
    for _ in range(removals):
        idx = data.draw(st.integers(min_value=0, max_value=len(tasks) - 1))
        victim = tasks.pop(idx)
        q.remove(victim)
    assert q.is_sorted()
    assert len(q) == len(tasks)


class TestCachedKeyIndex:
    """The tid -> cached-key map behind the O(log n) operations."""

    def test_add_twice_raises(self):
        q = SortedTaskList(key=lambda t: t.weight)
        (task,) = make_tasks([1])
        q.add(task)
        with pytest.raises(ValueError):
            q.add(task)

    def test_remove_locates_by_stale_cached_key(self):
        # The live key drifts after insertion; removal must still find
        # the entry via the key cached at add() time.
        q = SortedTaskList(key=lambda t: t.sched.get("x", 0))
        tasks = make_tasks([1, 1, 1])
        for i, t in enumerate(tasks):
            t.sched["x"] = i
            q.add(t)
        tasks[1].sched["x"] = -99  # drift without reposition()
        q.remove(tasks[1])
        assert list(q) == [tasks[0], tasks[2]]
        assert tasks[1] not in q

    def test_contains_tracks_membership_through_churn(self):
        q = SortedTaskList(key=lambda t: t.weight)
        tasks = make_tasks([3, 1, 2])
        for t in tasks:
            q.add(t)
        q.remove(tasks[0])
        assert tasks[0] not in q and tasks[1] in q and tasks[2] in q
        q.add(tasks[0])
        assert tasks[0] in q

    def test_remove_comparisons_are_logarithmic(self):
        q = SortedTaskList(key=lambda t: t.weight)
        tasks = make_tasks(range(1, 1025))
        for t in tasks:
            q.add(t)
        before = q.comparisons
        q.remove(tasks[512])  # mid-queue: a linear walk would pay ~512
        assert q.comparisons - before <= 12  # ceil(log2(1024)) + slack

    def test_resort_refreshes_cached_keys(self):
        q = SortedTaskList(key=lambda t: t.sched.get("x", 0))
        tasks = make_tasks([1] * 6)
        for i, t in enumerate(tasks):
            t.sched["x"] = i
            q.add(t)
        for i, t in enumerate(tasks):
            t.sched["x"] = 6 - i
        q.resort_insertion()
        # Post-resort, removal by (new) cached key must still work for
        # every element, in arbitrary order.
        for t in tasks:
            q.remove(t)
        assert len(q) == 0


@given(st.data())
def test_property_model_based_ops_match_reference(data):
    """Drive add/remove/discard/reposition/contains against a plain
    sorted-list reference model; the queue must agree at every step."""
    q = SortedTaskList(key=lambda t: t.sched.get("k", 0))
    pool = make_tasks([1] * 8)
    for i, t in enumerate(pool):
        t.sched["k"] = i
    model: list[Task] = []

    def expect():
        return sorted(model, key=lambda t: (t.sched["cached"], t.tid))

    for _ in range(data.draw(st.integers(min_value=1, max_value=40))):
        op = data.draw(st.sampled_from(["add", "remove", "discard",
                                        "reposition", "contains"]))
        task = data.draw(st.sampled_from(pool))
        if op == "add" and task not in model:
            task.sched["cached"] = task.sched["k"]
            q.add(task)
            model.append(task)
        elif op == "remove":
            if task in model:
                q.remove(task)
                model.remove(task)
            else:
                with pytest.raises(ValueError):
                    q.remove(task)
        elif op == "discard":
            assert q.discard(task) is (task in model)
            if task in model:
                model.remove(task)
        elif op == "reposition" and task in model:
            task.sched["k"] = data.draw(
                st.integers(min_value=-100, max_value=100)
            )
            task.sched["cached"] = task.sched["k"]
            q.reposition(task)
        elif op == "contains":
            assert (task in q) is (task in model)
        assert list(q) == expect()
        assert len(q) == len(model)
