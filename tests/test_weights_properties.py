"""Property-based tests (hypothesis) for the weight readjustment algorithm.

These verify the §2.1 optimality claims over randomized inputs:
feasible output, minimal change, idempotence, and the closed-form
share of adjusted threads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import (
    is_feasible,
    readjust,
    readjust_sorted,
    readjust_sorted_iterative,
    violators,
)

weights_strategy = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)
procs_strategy = st.integers(min_value=1, max_value=16)


def sorted_desc(w):
    return sorted(w, reverse=True)


@given(weights_strategy, procs_strategy)
def test_output_is_feasible_when_t_at_least_p(w, p):
    if len(w) < p:
        return  # Eq. 1 unsatisfiable by arithmetic; covered separately
    out = readjust_sorted(sorted_desc(w), p)
    assert is_feasible(out, p)


@given(weights_strategy, procs_strategy)
def test_idempotent_closed_form(w, p):
    # The closed-form path assigns one exact value to all adjusted
    # threads, so a second application is bitwise identical.
    first = readjust_sorted_iterative(sorted_desc(w), p)
    second = readjust_sorted_iterative(first, p)
    assert second == first


@given(weights_strategy, procs_strategy)
def test_idempotent_recursive_within_ulp(w, p):
    # The paper-literal recursion re-sums at every level and can wobble
    # by an ulp; idempotence holds to relative 1e-9.
    first = readjust_sorted(sorted_desc(w), p)
    second = readjust_sorted(first, p)
    for a, b in zip(first, second):
        assert abs(a - b) <= 1e-9 * max(1.0, abs(a))


@given(weights_strategy, procs_strategy)
def test_feasible_inputs_unchanged(w, p):
    sw = sorted_desc(w)
    if is_feasible(sw, p):
        assert readjust_sorted(sw, p) == [float(x) for x in sw]


@given(weights_strategy, procs_strategy)
def test_at_most_p_minus_one_adjusted(w, p):
    sw = [float(x) for x in sorted_desc(w)]
    out = readjust_sorted(sw, p)
    if len(sw) < p:
        return  # degenerate equalization may touch everything
    changed = sum(1 for a, b in zip(sw, out) if a != b)
    assert changed <= max(0, p - 1)


@given(weights_strategy, procs_strategy)
def test_adjusted_threads_get_share_exactly_one_over_p(w, p):
    sw = [float(x) for x in sorted_desc(w)]
    if len(sw) < p:
        return
    out = readjust_sorted(sw, p)
    total = sum(out)
    for orig, adj in zip(sw, out):
        if orig != adj:
            assert abs(adj / total - 1.0 / p) < 1e-6


@given(weights_strategy, procs_strategy)
def test_unadjusted_threads_keep_original_weights(w, p):
    sw = [float(x) for x in sorted_desc(w)]
    if len(sw) < p:
        return
    out = readjust_sorted(sw, p)
    # The adjusted set is a prefix; the suffix must be bitwise intact.
    k = sum(1 for a, b in zip(sw, out) if a != b)
    assert out[k:] == sw[k:]


@given(weights_strategy, procs_strategy)
def test_output_stays_sorted_descending(w, p):
    out = readjust_sorted(sorted_desc(w), p)
    assert all(
        out[i] >= out[i + 1] - 1e-9 * max(1.0, out[i + 1])
        for i in range(len(out) - 1)
    )


@settings(max_examples=200)
@given(weights_strategy, procs_strategy)
def test_iterative_equals_recursive(w, p):
    sw = sorted_desc(w)
    a = readjust_sorted(sw, p)
    b = readjust_sorted_iterative(sw, p)
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert abs(x - y) <= 1e-9 * max(1.0, abs(x))


@given(weights_strategy, procs_strategy)
def test_arbitrary_order_matches_sorted_application(w, p):
    out = readjust(w, p)
    # Re-sorting the output must equal adjusting the sorted input
    # (readjust uses the closed-form path).
    expected = readjust_sorted_iterative(sorted_desc(w), p)
    assert sorted(out, reverse=True) == sorted(expected, reverse=True)


@given(weights_strategy, procs_strategy)
def test_no_violators_after_readjustment(w, p):
    if len(w) < p:
        return
    out = readjust(w, p)
    assert violators(out, p) == []


@given(weights_strategy, procs_strategy)
def test_total_positive_and_all_weights_positive(w, p):
    out = readjust(w, p)
    assert all(x > 0 for x in out)
