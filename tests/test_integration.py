"""Cross-module integration tests: determinism, multi-CPU scaling,
mixed workloads, GMS tracking, registry and CLI."""

import random

import pytest

from tests.conftest import add_inf
from repro.analysis.fairness import gms_deviation
from repro.core.sfs import SurplusFairScheduler
from repro.experiments.cli import EXPERIMENTS, main
from repro.schedulers.registry import make_scheduler, scheduler_names
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.gcc_build import CompileJob
from repro.workloads.interactive import Interactive
from repro.workloads.mpeg import MpegDecoder


class TestDeterminism:
    def _signature(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.2,
                    quantum_jitter=0.03, jitter_seed=5)
        tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3)]
        decoder = MpegDecoder(frame_cost=0.02)
        m.add_task(Task(decoder, weight=5, name="mpeg"))
        inter = Interactive(think_time=0.3, burst=0.005, rng=random.Random(9))
        m.add_task(Task(inter, weight=1, name="i"))
        m.run_until(10.0)
        return (
            [t.service for t in tasks],
            decoder.frame_times,
            inter.responses,
            m.trace.context_switches,
        )

    def test_identical_runs_bit_for_bit(self):
        assert self._signature() == self._signature()


class TestMultiCpuScaling:
    @pytest.mark.parametrize("cpus", [1, 2, 4, 8])
    def test_sfs_proportional_on_any_cpu_count(self, cpus):
        m = Machine(SurplusFairScheduler(), cpus=cpus, quantum=0.1)
        # 4*cpus equal tasks plus one double-weight task.
        tasks = [add_inf(m, 1, f"T{i}") for i in range(4 * cpus)]
        heavy = add_inf(m, 2, "heavy")
        m.run_until(20.0)
        total = sum(t.service for t in tasks) + heavy.service
        assert total == pytest.approx(20.0 * cpus, rel=0.01)
        expected = 2 / (4 * cpus + 2)
        assert heavy.service / total == pytest.approx(expected, rel=0.25)

    def test_capacity_scales_with_cpus(self):
        for cpus in (1, 3, 5):
            m = Machine(SurplusFairScheduler(), cpus=cpus, quantum=0.1)
            tasks = [add_inf(m, 1, f"T{i}") for i in range(2 * cpus)]
            m.run_until(4.0)
            assert sum(t.service for t in tasks) == pytest.approx(4.0 * cpus)


class TestMixedWorkload:
    def test_web_hosting_mix_respects_weights(self):
        """The paper's motivating scenario: multiple domains on one SMP,
        each a mix of applications, isolated by weights."""
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        # Domain A (weight 3 total): decoder + compile jobs.
        dec = MpegDecoder(frame_cost=0.02, target_fps=30)
        m.add_task(Task(dec, weight=2, name="A-stream"))
        m.add_task(Task(CompileJob(random.Random(1)), weight=1, name="A-gcc"))
        # Domain B (weight 1): batch hogs.
        for i in range(2):
            add_inf(m, 0.5, f"B-hog{i}")
        m.run_until(30.0)
        # The decoder needs 0.6 CPUs and is entitled to 1.0: full rate.
        assert dec.achieved_fps(5.0, 30.0) == pytest.approx(30.0, abs=2.0)

    def test_sfs_tracks_gms_for_dynamic_workload(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        for i, w in enumerate((1, 2, 3)):
            add_inf(m, w, f"w{w}")
        m.add_task(Task(CompileJob(random.Random(2)), weight=2, name="gcc"))
        m.run_until(15.0)
        dev = gms_deviation(m)
        for tid, d in dev.items():
            assert abs(d) < 1.0, f"tid {tid} deviates {d:.3f}s from GMS"


class TestRegistry:
    def test_all_registered_schedulers_run_a_basic_workload(self):
        for name in scheduler_names():
            sched = make_scheduler(name)
            m = Machine(sched, cpus=2, quantum=0.1)
            tasks = [add_inf(m, w, f"w{w}") for w in (1, 2)]
            m.run_until(2.0)
            assert sum(t.service for t in tasks) == pytest.approx(4.0), name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("cfs")

    def test_factories_produce_fresh_instances(self):
        a = make_scheduler("sfs")
        b = make_scheduler("sfs")
        assert a is not b


class TestCli:
    def test_experiment_table_is_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig6c",
            "table1", "fig7", "sensitivity", "saturation", "flows",
        }

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_cli_runs_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "Figure 1" in out
