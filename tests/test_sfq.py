"""Tests for multiprocessor SFQ — including the paper's Example 1."""

import pytest

from tests.conftest import add_inf
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine
from repro.sim.metrics import service_between


def machine(readjust=False, cpus=2, quantum=0.001, **kw):
    return Machine(
        StartTimeFairScheduler(readjust=readjust), cpus=cpus, quantum=quantum, **kw
    )


class TestExample1:
    """§1.2 Example 1: the infeasible-weights starvation scenario."""

    def _run(self, readjust):
        m = machine(readjust=readjust)
        t1 = add_inf(m, 1, "T1")
        t2 = add_inf(m, 10, "T2")
        t3 = add_inf(m, 1, "T3", at=1.0)  # 1000 quanta at q=1ms
        m.run_until(2.5)
        return m, t1, t2, t3

    def test_tags_match_papers_numbers(self):
        m, t1, t2, t3 = self._run(readjust=False)
        # After 1000 quanta: S1 = 1000q/1 = 1.0s, S2 = 1000q/10 = 0.1s.
        # T3 initialized at the minimum: 0.1.
        # (tags advance a hair beyond 1.0 before we sample; tolerate one
        # quantum of skew)
        assert t1.sched["S"] >= 0.999
        assert t2.sched["S"] >= 0.0999
        # T3's *initial* tag was min(S) ~ 0.1; after catching up it has
        # advanced. Instead check the documented outcome: starvation.

    def test_t1_starves_for_900_quanta(self):
        m, t1, t2, t3 = self._run(readjust=False)
        # T1 receives (almost) nothing for ~0.9s after T3 arrives.
        starved_window = service_between(t1, 1.0, 1.9)
        assert starved_window < 0.02

    def test_t1_resumes_after_catchup(self):
        m, t1, t2, t3 = self._run(readjust=False)
        resumed = service_between(t1, 2.0, 2.5)
        assert resumed > 0.1

    def test_readjustment_prevents_starvation(self):
        m, t1, t2, t3 = self._run(readjust=True)
        # With capped phis, T1 keeps receiving service after T3 arrives.
        window = service_between(t1, 1.0, 1.9)
        assert window > 0.15  # ~quarter share of 0.9s

    def test_readjusted_shares_1_2_1(self):
        m, t1, t2, t3 = self._run(readjust=True)
        shares = [
            service_between(t, 1.2, 2.4) / 2.4 for t in (t1, t2, t3)
        ]
        assert shares[1] == pytest.approx(2 * shares[0], rel=0.2)
        assert shares[2] == pytest.approx(shares[0], rel=0.2)


class TestSpurts:
    def test_sfq_schedules_in_spurts(self):
        """§4.3: SFQ runs large-weight threads continuously for several
        quanta before yielding ("spurts")."""
        m = machine(cpus=1, quantum=0.1)
        add_inf(m, 10, "heavy")
        add_inf(m, 1, "light")
        picks = []
        sched = m.scheduler
        orig = sched.pick_next

        def spy(cpu, now):
            t = orig(cpu, now)
            if t is not None:
                picks.append(t.name)
            return t

        sched.pick_next = spy
        m.run_until(4.0)
        # The heavy thread must have a run of many consecutive picks.
        longest = 0
        run = 0
        for name in picks:
            run = run + 1 if name == "heavy" else 0
            longest = max(longest, run)
        assert longest >= 5


class TestWakePreemption:
    def test_woken_thread_with_smaller_tag_preempts(self):
        import math
        from repro.sim.events import Block, Run
        from repro.sim.task import Task
        from repro.workloads.base import GeneratorBehavior

        m = machine(cpus=1, quantum=0.5)

        def gen():
            yield Run(0.01)
            yield Block(0.3)
            yield Run(0.01)
            yield Block(0.3)
            yield Run(math.inf)

        interactive = m.add_task(
            Task(GeneratorBehavior(gen()), weight=1, name="inter")
        )
        add_inf(m, 1, "hog")
        m.run_until(2.0)
        # Wakeups at ~0.31s and ~0.62s preempt the hog mid-quantum
        # rather than waiting out the 500ms quantum.
        assert interactive.service == pytest.approx(0.02, abs=0.005) or \
            interactive.service > 0.02
        assert m.trace.preemptions > 2
