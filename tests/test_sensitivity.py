"""Unit tests for the Fig. 5 sensitivity experiment module."""

import pytest

from repro.experiments import sensitivity


class TestSensitivity:
    def test_small_sweep_shapes(self):
        result = sensitivity.run(jitters=(0.0,), seeds=(1, 2),
                                 schedulers=("gms-reference",))
        shares = result.shares[("gms-reference", 0.0)]
        assert len(shares) == 2
        for s in shares:
            assert s == pytest.approx(sensitivity.IDEAL_SHORT_SHARE, abs=0.04)

    def test_spread_and_mean_helpers(self):
        result = sensitivity.SensitivityResult(
            shares={("sfs", 0.0): [0.2, 0.3, 0.25]}
        )
        assert result.spread("sfs", 0.0) == pytest.approx(0.1)
        assert result.mean("sfs", 0.0) == pytest.approx(0.25)

    def test_render_mentions_every_cell(self):
        result = sensitivity.run(jitters=(0.0,), seeds=(1,),
                                 schedulers=("gms-reference",))
        out = sensitivity.render(result)
        assert "gms-reference" in out
        assert "jitter=0.00" in out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            sensitivity.run(schedulers=("cfs",), jitters=(0.0,), seeds=(1,))
