"""Tests for the GMS fluid oracle (§2.2) and trace replay."""

import pytest

from tests.conftest import add_inf
from repro.core.gms import FluidGMS, replay_trace
from repro.core.sfs import SurplusFairScheduler
from repro.sim.machine import Machine
from repro.sim.tracing import TraceEvent


class TestRates:
    def test_feasible_weights_share_proportionally(self):
        gms = FluidGMS(cpus=2)
        gms.arrive(1, 1.0, 0.0)
        gms.arrive(2, 2.0, 0.0)
        gms.arrive(3, 1.0, 0.0)
        rates = gms.rates()
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(1.0)
        assert rates[3] == pytest.approx(0.5)

    def test_infeasible_weight_capped_at_one_processor(self):
        gms = FluidGMS(cpus=2)
        gms.arrive(1, 1.0, 0.0)
        gms.arrive(2, 100.0, 0.0)
        rates = gms.rates()
        # Eq. 2 over feasible phis: the heavy thread gets exactly one
        # CPU, the light one the other.
        assert rates[2] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(1.0)

    def test_fewer_threads_than_cpus_each_get_full_processor(self):
        gms = FluidGMS(cpus=4)
        gms.arrive(1, 5.0, 0.0)
        gms.arrive(2, 1.0, 0.0)
        rates = gms.rates()
        assert rates[1] == pytest.approx(1.0)
        assert rates[2] == pytest.approx(1.0)

    def test_total_rate_never_exceeds_capacity(self):
        gms = FluidGMS(cpus=2)
        for i, w in enumerate((10, 4, 3, 2, 1)):
            gms.arrive(i, w, 0.0)
        assert sum(gms.rates().values()) <= 2.0 + 1e-9

    def test_work_conserving_when_saturated(self):
        gms = FluidGMS(cpus=2)
        for i in range(3):
            gms.arrive(i, i + 1.0, 0.0)
        assert sum(gms.rates().values()) == pytest.approx(2.0)

    def test_empty_system_has_no_rates(self):
        assert FluidGMS(cpus=2).rates() == {}


class TestIntegration:
    def test_service_integrates_rates(self):
        gms = FluidGMS(cpus=1)
        gms.arrive(1, 1.0, 0.0)
        gms.arrive(2, 3.0, 0.0)
        gms.advance_to(4.0)
        assert gms.service_of(1) == pytest.approx(1.0)
        assert gms.service_of(2) == pytest.approx(3.0)

    def test_departure_stops_service(self):
        gms = FluidGMS(cpus=1)
        gms.arrive(1, 1.0, 0.0)
        gms.arrive(2, 1.0, 0.0)
        gms.depart(2, 2.0)
        gms.advance_to(4.0)
        assert gms.service_of(2) == pytest.approx(1.0)
        assert gms.service_of(1) == pytest.approx(3.0)

    def test_weight_change_reshapes_rates(self):
        gms = FluidGMS(cpus=1)
        gms.arrive(1, 1.0, 0.0)
        gms.arrive(2, 1.0, 0.0)
        gms.set_weight(2, 3.0, 2.0)
        gms.advance_to(6.0)
        # First 2 s split evenly; last 4 s split 1:3.
        assert gms.service_of(1) == pytest.approx(1.0 + 1.0)
        assert gms.service_of(2) == pytest.approx(1.0 + 3.0)

    def test_time_cannot_go_backwards(self):
        gms = FluidGMS(cpus=1)
        gms.advance_to(5.0)
        with pytest.raises(ValueError):
            gms.advance_to(4.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FluidGMS(cpus=0)
        with pytest.raises(ValueError):
            FluidGMS(cpus=1, capacity=0)
        gms = FluidGMS(cpus=1)
        with pytest.raises(ValueError):
            gms.arrive(1, 0.0, 0.0)


class TestReplay:
    def test_replay_simple_timeline(self):
        events = [
            TraceEvent(0.0, "arrive", 1, 1.0),
            TraceEvent(0.0, "arrive", 2, 1.0),
            TraceEvent(5.0, "exit", 2, 1.0),
        ]
        service = replay_trace(events, cpus=1, t_end=10.0)
        assert service[1] == pytest.approx(2.5 + 5.0)
        assert service[2] == pytest.approx(2.5)

    def test_replay_block_and_wake(self):
        events = [
            TraceEvent(0.0, "arrive", 1, 1.0),
            TraceEvent(0.0, "arrive", 2, 1.0),
            TraceEvent(4.0, "block", 2, 1.0),
            TraceEvent(8.0, "wake", 2, 1.0),
        ]
        service = replay_trace(events, cpus=1, t_end=10.0)
        assert service[2] == pytest.approx(2.0 + 1.0)

    def test_replay_of_real_sfs_run_tracks_actual_service(self):
        # The actual SFS allocation stays within a few quanta of the
        # fluid ideal for a static CPU-bound workload.
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3)]
        m.run_until(20.0)
        ideal = replay_trace(m.trace.events, 2, 20.0)
        for t in tasks:
            assert t.service == pytest.approx(ideal[t.tid], abs=0.8)

    def test_replay_matches_fluid_gms_spec(self):
        # replay_trace is an incremental reformulation of driving
        # FluidGMS event by event; the two must agree to float
        # rounding on a timeline with churn, weight changes, and an
        # infeasible stretch (weight 50 on 2 CPUs pins a processor).
        events = [
            TraceEvent(0.0, "arrive", 1, 1.0),
            TraceEvent(0.5, "arrive", 2, 3.0),
            TraceEvent(1.0, "arrive", 3, 50.0),
            TraceEvent(1.5, "weight", 2, 5.0),
            TraceEvent(2.0, "block", 1, 1.0),
            TraceEvent(2.5, "wake", 1, 1.0),
            TraceEvent(3.0, "exit", 3, 50.0),
            TraceEvent(3.5, "arrive", 4, 2.0),
            TraceEvent(4.0, "exit", 2, 5.0),
        ]
        fast = replay_trace(events, cpus=2, t_end=5.0)
        gms = FluidGMS(cpus=2)
        for ev in events:
            if ev.kind in ("arrive", "wake"):
                gms.arrive(ev.tid, ev.weight, ev.time)
            elif ev.kind in ("block", "exit"):
                gms.depart(ev.tid, ev.time)
            elif ev.kind == "weight":
                gms.set_weight(ev.tid, ev.weight, ev.time)
        gms.advance_to(5.0)
        spec = gms.services()
        assert fast.keys() == spec.keys()
        for tid in spec:
            assert fast[tid] == pytest.approx(spec[tid], rel=1e-9), tid
