"""End-to-end reproductions of the paper's worked Examples 1 and 2 (§1.2)."""

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine
from repro.sim.metrics import service_between
from repro.workloads.shortjobs import ShortJobFeeder


class TestExample1:
    """Two CPUs, q=1ms; T1 w=1 and T2 w=10 from t=0; T3 w=1 at 1000q.

    Paper numbers: S1=1000, S2=100 (in quanta units) when T3 arrives;
    T3 initialized at S3=100; T1 starves ~900 quanta.
    """

    def test_tag_trace_matches_paper(self):
        m = Machine(StartTimeFairScheduler(), cpus=2, quantum=0.001)
        t1 = add_inf(m, 1, "T1")
        t2 = add_inf(m, 10, "T2")
        t3 = add_inf(m, 1, "T3", at=1.0)
        m.run_until(1.0)
        # Tags in seconds of virtual time: 1000 quanta * 1ms / w.
        assert t1.sched["S"] == pytest.approx(1.0, abs=0.002)
        assert t2.sched["S"] == pytest.approx(0.1, abs=0.002)
        m.run_until(1.002)
        assert t3.sched["S"] <= 0.102  # initialized at the minimum tag

    def test_starvation_duration_about_900_quanta(self):
        m = Machine(StartTimeFairScheduler(), cpus=2, quantum=0.001)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=1.0)
        m.run_until(2.1)
        # T1 gets essentially nothing in [1.0, 1.9) and runs again after.
        assert service_between(t1, 1.0, 1.89) < 0.01
        assert service_between(t1, 1.95, 2.1) > 0.05

    def test_sfs_avoids_the_starvation(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.001)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=1.0)
        m.run_until(2.0)
        # Readjusted phis are [1, 2, 1]: T1 keeps ~1/4 of the machine.
        assert service_between(t1, 1.0, 2.0) == pytest.approx(0.5, abs=0.1)


class TestExample2:
    """A heavy thread + many weight-1 threads is always feasible; short
    heavy-ish jobs arriving back-to-back grab a full processor under
    SFQ. Scaled from the paper (w=10000 + 10000 lights, shorts w=100
    for 100 quanta) to w=1000 + 300 lights, shorts w=100 for 50 quanta
    — preserving the governing ratio life_quanta/weight <= 1 so each
    job's tag advances at most one quantum over its life. Shorts start
    after an 8 s warm-up (the paper's steady-state assumption: the
    light threads' tags sit above the heavy thread's).
    """

    def _run(self, scheduler_cls):
        m = Machine(scheduler_cls(), cpus=2, quantum=0.01,
                    record_events=False)
        heavy = add_inf(m, 1000, "heavy")
        light = [add_inf(m, 1, f"l{i}") for i in range(300)]
        feeder = ShortJobFeeder(m, weight=100, job_cpu=0.5, first_arrival=8.0)
        m.run_until(28.0)
        return heavy, light, feeder, m

    def test_weights_remain_feasible(self):
        heavy, light, feeder, m = self._run(StartTimeFairScheduler)
        # 1000 / (1000 + 300 + 100) < 1/2 at all times.
        assert heavy.phi == heavy.weight

    def test_sfq_gives_short_jobs_as_much_as_heavy(self):
        heavy, light, feeder, m = self._run(StartTimeFairScheduler)
        # Paper: "each short-lived thread with weight 100 gets as much
        # processor bandwidth as the thread with weight 10,000".
        shorts = feeder.total_service()
        heavy_window = service_between(heavy, 8.0, 28.0)
        assert shorts > 0.9 * heavy_window

    def test_sfs_throttles_short_jobs_relative_to_heavy(self):
        _, _, sfq_feeder, _ = self._run(StartTimeFairScheduler)
        heavy, _, sfs_feeder, _ = self._run(SurplusFairScheduler)
        # SFS gives the short-job stream far less than SFQ does, and
        # far less than the heavy thread.
        assert sfs_feeder.total_service() < 0.5 * sfq_feeder.total_service()
        assert sfs_feeder.total_service() < 0.5 * service_between(heavy, 8.0, 28.0)
