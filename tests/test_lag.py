"""Tests for the service-lag analysis (windowed GMS deviation)."""

import pytest

from tests.conftest import add_inf
from repro.analysis.lag import lag_curve, lag_report, max_absolute_lag
from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine


class TestLagCurve:
    def test_sfs_lag_bounded_by_a_few_quanta(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3)]
        m.run_until(20.0)
        for t in tasks:
            assert max_absolute_lag(m, t, 0.0, 20.0) < 0.5, t.name

    def test_lag_curve_starts_near_zero(self):
        m = Machine(SurplusFairScheduler(), cpus=1, quantum=0.1)
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(5.0)
        curve = lag_curve(m, a, 0.0, 5.0)
        assert abs(curve[0][1]) < 0.11

    def test_sfq_starvation_shows_as_large_negative_lag(self):
        m = Machine(StartTimeFairScheduler(), cpus=2, quantum=0.001)
        t1 = add_inf(m, 1, "T1")
        add_inf(m, 10, "T2")
        add_inf(m, 1, "T3", at=1.0)
        m.run_until(2.0)
        curve = lag_curve(m, t1, 0.0, 2.0, step=0.05)
        assert min(v for _, v in curve) < -0.25

    def test_round_robin_lags_against_weighted_ideal(self):
        # RR ignores a 1:3 weighting: the heavy task falls behind GMS.
        m = Machine(RoundRobinScheduler(), cpus=1, quantum=0.1)
        add_inf(m, 1, "light")
        heavy = add_inf(m, 3, "heavy")
        m.run_until(10.0)
        assert max_absolute_lag(m, heavy, 0.0, 10.0) > 1.0

    def test_lag_report_covers_all_tasks(self):
        m = Machine(SurplusFairScheduler(), cpus=2, quantum=0.1)
        add_inf(m, 1, "A")
        add_inf(m, 2, "B")
        m.run_until(2.0)
        report = lag_report(m, 0.0, 2.0)
        assert set(report) == {"A", "B"}

    def test_step_validation(self):
        m = Machine(SurplusFairScheduler(), cpus=1)
        a = add_inf(m, 1, "A")
        m.run_until(1.0)
        with pytest.raises(ValueError):
            lag_curve(m, a, 0.0, 1.0, step=0.0)
