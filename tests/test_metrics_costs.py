"""Tests for service metrics and the context-switch cost models."""

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.sim.costs import (
    DecisionCostParams,
    LMBENCH_COST,
    TESTBED_COST,
    ZERO_COST,
)
from repro.sim.machine import Machine
from repro.sim.metrics import (
    service_at,
    service_between,
    share_between,
    shares,
)


class TestServiceAt:
    def _machine(self):
        return Machine(SurplusFairScheduler(), cpus=1, quantum=0.2)

    def test_exact_on_continuous_run(self):
        m = self._machine()
        t = add_inf(m, 1, "A")
        m.run_until(1.0)
        assert service_at(t, 0.5) == pytest.approx(0.5)

    def test_flat_during_idle_gap(self):
        # Two tasks alternate 0.2s quanta on one CPU; between its quanta
        # a task's service must be exactly flat.
        m = self._machine()
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(2.0)
        # A runs [0, .2], waits [.2, .4], runs [.4, .6] ...
        assert service_at(a, 0.2) == pytest.approx(0.2)
        assert service_at(a, 0.3) == pytest.approx(0.2)  # flat!
        assert service_at(a, 0.399) == pytest.approx(0.2, abs=1e-6)
        assert service_at(a, 0.5) == pytest.approx(0.3)

    def test_before_first_run(self):
        m = self._machine()
        add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(1.0)
        assert service_at(b, 0.05) == pytest.approx(0.0)

    def test_after_last_sample_returns_total(self):
        m = self._machine()
        t = add_inf(m, 1, "A")
        m.run_until(1.0)
        assert service_at(t, 99.0) == pytest.approx(1.0)

    def test_empty_series(self):
        from repro.sim.task import Task
        from repro.workloads.cpu_bound import Infinite

        t = Task(Infinite(), weight=1)
        assert service_at(t, 5.0) == 0.0

    def test_service_between_and_share(self):
        m = self._machine()
        a = add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(4.0)
        assert service_between(a, 0.0, 4.0) == pytest.approx(2.0, abs=0.2)
        assert share_between(a, 0.0, 4.0, cpus=1) == pytest.approx(0.5, abs=0.05)

    def test_shares_maps_names(self):
        m = self._machine()
        a = add_inf(m, 1, "A")
        b = add_inf(m, 1, "B")
        m.run_until(2.0)
        result = shares([a, b], 0.0, 2.0, cpus=1)
        assert set(result) == {"A", "B"}
        assert sum(result.values()) == pytest.approx(1.0, abs=0.01)


class TestDecisionCostParams:
    def test_constant_cost(self):
        p = DecisionCostParams(base=2e-6)
        assert p.cost(100) == pytest.approx(2e-6)

    def test_linear_growth(self):
        p = DecisionCostParams(base=1e-6, per_thread=0.1e-6)
        assert p.cost(10) == pytest.approx(2e-6)

    def test_loglinear_term(self):
        p = DecisionCostParams(log_coeff=1e-6)
        assert p.cost(7) == pytest.approx(7e-6 * 3)  # 7 * log2(8)

    def test_negative_counts_clamped(self):
        assert DecisionCostParams(base=1e-6).cost(-5) == pytest.approx(1e-6)


class TestCostModel:
    def test_zero_cost_is_free(self):
        assert ZERO_COST.switch_cost(None, 64.0, 1e-6) == 0.0

    def test_cache_cost_fits_table1(self):
        # Fitted to Table 1: ~14 us at 16 KB, ~176 us at 64 KB.
        assert TESTBED_COST.cache_restore_cost(16) == pytest.approx(14e-6, rel=0.1)
        assert TESTBED_COST.cache_restore_cost(64) == pytest.approx(176e-6, rel=0.1)
        assert TESTBED_COST.cache_restore_cost(0) == 0.0

    def test_switch_cost_composition(self):
        cost = TESTBED_COST.switch_cost(None, 0.0, 2e-6)
        assert cost == pytest.approx(TESTBED_COST.ctx_base + 2e-6)

    def test_lmbench_model_counts_live_tasks(self):
        assert LMBENCH_COST.decision_count_mode == "live"
        assert TESTBED_COST.decision_count_mode == "runnable"

    def test_overhead_charged_to_trace(self):
        m = Machine(
            SurplusFairScheduler(),
            cpus=1,
            quantum=0.1,
            cost_model=TESTBED_COST,
        )
        add_inf(m, 1, "A")
        add_inf(m, 1, "B")
        m.run_until(2.0)
        assert m.trace.overhead_time > 0
        assert m.trace.context_switches >= 18

    def test_no_switch_cost_when_same_task_continues(self):
        m = Machine(
            SurplusFairScheduler(),
            cpus=1,
            quantum=0.1,
            cost_model=TESTBED_COST,
        )
        add_inf(m, 1, "A")  # alone: re-dispatched every quantum
        m.run_until(2.0)
        # Only the initial dispatch is a switch.
        assert m.trace.context_switches == 1
        assert m.trace.dispatches >= 19
