"""Tests for the workload behaviours (§4.1 applications)."""

import math
import random

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.sim.events import Block, Exit, Run
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import GeneratorBehavior
from repro.workloads.cpu_bound import FiniteCompute, Infinite, iterations
from repro.workloads.disksim import DisksimBatch
from repro.workloads.gcc_build import CompileJob
from repro.workloads.interactive import Interactive
from repro.workloads.mpeg import MpegDecoder


def machine(cpus=1, quantum=0.2, **kw):
    return Machine(SurplusFairScheduler(), cpus=cpus, quantum=quantum, **kw)


class TestInfinite:
    def test_first_segment_runs_forever(self):
        seg = Infinite().start(0.0)
        assert isinstance(seg, Run)
        assert math.isinf(seg.duration)

    def test_iterations_scale_with_service(self):
        m = machine()
        t = add_inf(m, 1, "A")
        m.run_until(2.0)
        assert iterations(t, rate=1000.0) == pytest.approx(2000.0)


class TestFiniteCompute:
    def test_records_completion_time(self):
        m = machine()
        beh = FiniteCompute(0.3)
        m.add_task(Task(beh, weight=1, name="f"))
        m.run_until(1.0)
        assert beh.completed_at == pytest.approx(0.3)

    def test_rejects_negative_cpu(self):
        with pytest.raises(ValueError):
            FiniteCompute(-1.0)


class TestInteractive:
    def test_records_response_times(self):
        m = machine()
        beh = Interactive(think_time=0.5, burst=0.01)
        m.add_task(Task(beh, weight=1, name="i"))
        m.run_until(3.0)
        assert len(beh.responses) >= 4
        # Uncontended: response equals the burst.
        for _, rt in beh.responses:
            assert rt == pytest.approx(0.01, abs=1e-6)

    def test_response_time_at_least_burst_under_contention(self):
        m = machine()
        beh = Interactive(think_time=0.3, burst=0.01)
        m.add_task(Task(beh, weight=1, name="i"))
        add_inf(m, 1, "hog")
        m.run_until(10.0)
        # Response can never be below the burst itself; with wakeup
        # preemption it stays close to it.
        assert beh.mean_response_time() >= 0.01 - 1e-9
        assert len(beh.responses) >= 10

    def test_randomized_thinks_are_reproducible(self):
        def responses(seed):
            m = machine()
            beh = Interactive(think_time=0.2, burst=0.01, rng=random.Random(seed))
            m.add_task(Task(beh, weight=1, name="i"))
            m.run_until(5.0)
            return beh.responses

        assert responses(1) == responses(1)
        assert responses(1) != responses(2)

    def test_mean_of_no_responses_is_zero(self):
        assert Interactive().mean_response_time() == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Interactive(think_time=-1)
        with pytest.raises(ValueError):
            Interactive(burst=0)


class TestMpegDecoder:
    def test_uncontended_decoder_hits_target_fps(self):
        m = machine()
        beh = MpegDecoder(frame_cost=0.02, target_fps=30.0)
        m.add_task(Task(beh, weight=1, name="mpeg"))
        m.run_until(10.0)
        assert beh.achieved_fps(1.0, 10.0) == pytest.approx(30.0, abs=1.0)

    def test_decoder_paces_itself(self):
        # 20 ms decode at 30 fps uses only ~60% of the CPU.
        m = machine()
        beh = MpegDecoder(frame_cost=0.02, target_fps=30.0)
        t = m.add_task(Task(beh, weight=1, name="mpeg"))
        m.run_until(10.0)
        assert t.service == pytest.approx(0.02 * 30 * 10, abs=0.5)

    def test_starved_decoder_fps_tracks_cpu_share(self):
        m = machine()
        beh = MpegDecoder(frame_cost=0.02, target_fps=30.0)
        m.add_task(Task(beh, weight=1, name="mpeg"))
        add_inf(m, 1, "hog")  # decoder gets ~half the CPU
        m.run_until(20.0)
        expected = 0.5 / 0.02  # share / frame cost = 25 fps
        assert beh.achieved_fps(4.0, 20.0) == pytest.approx(expected, abs=3.0)

    def test_total_frames_leads_to_exit(self):
        m = machine()
        beh = MpegDecoder(frame_cost=0.01, target_fps=100.0, total_frames=5)
        t = m.add_task(Task(beh, weight=1, name="mpeg"))
        m.run_until(2.0)
        assert len(beh.frame_times) == 5
        assert t.exit_time is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MpegDecoder(frame_cost=0)
        with pytest.raises(ValueError):
            MpegDecoder(target_fps=0)


class TestCompileJob:
    def test_alternates_bursts_and_io(self):
        m = machine()
        beh = CompileJob(random.Random(1))
        t = m.add_task(Task(beh, weight=1, name="gcc"))
        m.run_until(10.0)
        assert t.block_count > 10
        assert t.service > 5.0  # mostly CPU-bound

    def test_finite_compile_exits(self):
        m = machine()
        beh = CompileJob(random.Random(1), total_cpu=0.5)
        t = m.add_task(Task(beh, weight=1, name="gcc"))
        m.run_until(5.0)
        assert t.exit_time is not None
        assert t.service == pytest.approx(0.5, abs=0.01)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CompileJob(random.Random(1), burst_mean=0)
        with pytest.raises(ValueError):
            CompileJob(random.Random(1), io_mean=-1)


class TestDisksim:
    def test_pure_cpu_by_default(self):
        m = machine()
        t = m.add_task(Task(DisksimBatch(), weight=1, name="d"))
        m.run_until(3.0)
        assert t.service == pytest.approx(3.0)
        assert t.block_count == 0

    def test_checkpoints_block_occasionally(self):
        m = machine()
        beh = DisksimBatch(checkpoint_every=0.2, rng=random.Random(1))
        t = m.add_task(Task(beh, weight=1, name="d"))
        m.run_until(5.0)
        assert t.block_count > 5

    def test_checkpoints_require_rng(self):
        with pytest.raises(ValueError):
            DisksimBatch(checkpoint_every=1.0)


class TestGeneratorBehavior:
    def test_receives_completion_times(self):
        times = []

        def gen():
            now = yield Run(0.5)
            times.append(now)
            now = yield Block(1.0)
            times.append(now)
            yield Exit()

        m = machine()
        m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="g"))
        m.run_until(3.0)
        assert times == [pytest.approx(0.5), pytest.approx(1.5)]

    def test_exhausted_generator_exits_task(self):
        def gen():
            yield Run(0.1)

        m = machine()
        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="g"))
        m.run_until(1.0)
        assert t.exit_time == pytest.approx(0.1)

    def test_cannot_restart(self):
        beh = GeneratorBehavior(iter([Run(1.0)]))
        beh.start(0.0)
        with pytest.raises(RuntimeError):
            beh.start(0.0)
