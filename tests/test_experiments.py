"""Smoke + shape tests for every experiment module (scaled-down runs)."""

import pytest

from repro.experiments import (
    fig1_infeasible,
    fig3_heuristic,
    fig4_readjustment,
    fig5_shortjobs,
    fig6a_proportional,
    fig6b_isolation,
    fig6c_interactive,
    fig7_ctxswitch,
    table1_lmbench,
)


class TestFig1:
    def test_sfq_starves(self):
        r = fig1_infeasible.run("sfq", horizon_quanta=2200)
        assert r.t1_starvation > 0.7
        assert r.tags_at_arrival[0] == pytest.approx(1.0, abs=0.01)
        assert r.tags_at_arrival[1] == pytest.approx(0.1, abs=0.01)

    def test_readjustment_removes_starvation(self):
        r = fig1_infeasible.run("sfq-readjust", horizon_quanta=2200)
        assert r.t1_starvation < 0.1

    def test_render(self):
        r = fig1_infeasible.run("sfq", horizon_quanta=1500)
        out = fig1_infeasible.render(r)
        assert "Figure 1" in out and "starvation" in out

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            fig1_infeasible.run("nope")


class TestFig3:
    def test_k20_accuracy_high(self):
        r = fig3_heuristic.run(
            thread_counts=(100,), scan_depths=(1, 20), decisions=400
        )
        assert r.accuracy[(100, 20)] > 0.98
        assert r.accuracy[(100, 1)] < r.accuracy[(100, 20)] + 1e-9

    def test_render(self):
        r = fig3_heuristic.run(
            thread_counts=(50,), scan_depths=(5,), decisions=150
        )
        assert "Figure 3" in fig3_heuristic.render(r)


class TestFig4:
    def test_plain_sfq_starves_t1_in_phase2(self):
        r = fig4_readjustment.run("sfq")
        assert r.phase2["T1"] < 0.08
        assert r.t1_starvation > 5.0

    def test_readjusted_sfq_1_2_1(self):
        r = fig4_readjustment.run("sfq-readjust")
        assert r.phase2["T1"] == pytest.approx(0.25, abs=0.05)
        assert r.phase2["T2"] == pytest.approx(0.50, abs=0.05)
        assert r.phase2["T3"] == pytest.approx(0.25, abs=0.05)
        assert r.t1_starvation < 1.0

    def test_sfs_matches_readjusted_ideal(self):
        r = fig4_readjustment.run("sfs")
        assert r.phase1["T1"] == pytest.approx(0.5, abs=0.03)
        assert r.phase2["T2"] == pytest.approx(0.5, abs=0.05)
        assert r.phase3["T3"] == pytest.approx(0.5, abs=0.05)

    def test_render(self):
        out = fig4_readjustment.render(fig4_readjustment.run("sfs"))
        assert "Figure 4" in out


class TestFig5:
    def test_sfq_fails_proportions(self):
        r = fig5_shortjobs.run("sfq")
        # Paper: each set gets roughly equal shares under SFQ; T_short
        # vastly exceeds its 1/9 entitlement.
        assert r.group_share["T_short"] > 2 * fig5_shortjobs.IDEAL_SHARES["T_short"]

    def test_sfs_closer_to_ideal_than_sfq(self):
        sfq = fig5_shortjobs.run("sfq")
        sfs = fig5_shortjobs.run("sfs")
        ideal = fig5_shortjobs.IDEAL_SHARES["T_short"]
        assert abs(sfs.group_share["T_short"] - ideal) < abs(
            sfq.group_share["T_short"] - ideal
        )

    def test_gms_reference_delivers_4_4_1(self):
        r = fig5_shortjobs.run("gms-reference")
        assert r.group_share["T1"] == pytest.approx(4 / 9, abs=0.04)
        assert r.group_share["T2-21"] == pytest.approx(4 / 9, abs=0.04)
        assert r.group_share["T_short"] == pytest.approx(1 / 9, abs=0.04)

    def test_render(self):
        assert "Figure 5" in fig5_shortjobs.render(fig5_shortjobs.run("sfs"))


class TestFig6a:
    def test_ratios_track_weights(self):
        r = fig6a_proportional.run(horizon=60.0, warmup=20.0)
        for (w1, w2) in r.rates:
            assert r.measured_ratio((w1, w2)) == pytest.approx(
                w2 / w1, rel=0.25
            )

    def test_render(self):
        r = fig6a_proportional.run(
            weight_pairs=((1, 2),), horizon=30.0, warmup=10.0
        )
        assert "Figure 6(a)" in fig6a_proportional.render(r)


class TestFig6b:
    def test_sfs_isolates_decoder_ts_does_not(self):
        r = fig6b_isolation.run(compile_counts=(0, 6))
        sfs = dict(r.curves["sfs"])
        ts = dict(r.curves["linux-ts"])
        assert sfs[6] > 25.0  # SFS holds ~30 fps
        assert ts[6] < 20.0  # time sharing collapses

    def test_render(self):
        r = fig6b_isolation.run(compile_counts=(0, 2))
        assert "Figure 6(b)" in fig6b_isolation.render(r)


class TestFig6c:
    def test_both_schedulers_single_digit_ms_at_low_load(self):
        r = fig6c_interactive.run(disksim_counts=(1, 4))
        for name in ("sfs", "linux-ts"):
            for n, rt in r.curves[name]:
                assert rt < 0.05

    def test_render(self):
        r = fig6c_interactive.run(disksim_counts=(1,))
        assert "Figure 6(c)" in fig6c_interactive.render(r)


class TestTable1:
    def test_context_switch_rows_match_paper_shape(self):
        r = table1_lmbench.run(passes=400)
        ts0, sfs0 = r.rows["Context switch (2 proc/0KB)"]
        assert 0.5e-6 < ts0 < 3e-6
        assert 3e-6 < sfs0 < 6e-6
        ts16, sfs16 = r.rows["Context switch (8 proc/16KB)"]
        assert ts16 == pytest.approx(15e-6, rel=0.3)
        assert sfs16 > ts16
        ts64, sfs64 = r.rows["Context switch (16 proc/64KB)"]
        assert ts64 == pytest.approx(178e-6, rel=0.15)
        # §4.5: relative difference shrinks with process size.
        assert (sfs64 - ts64) / ts64 < (sfs0 - ts0) / ts0

    def test_scheduler_independent_rows_identical(self):
        r = table1_lmbench.run(passes=200)
        for label in ("syscall overhead", "fork()", "exec()"):
            ts, sfs = r.rows[label]
            assert ts == sfs

    def test_render_includes_paper_values(self):
        out = table1_lmbench.render(table1_lmbench.run(passes=200))
        assert "Table 1" in out and "paper" in out


class TestFig7:
    def test_overhead_grows_with_processes_for_both(self):
        r = fig7_ctxswitch.run(ring_sizes=(2, 16, 50), passes=300)
        for name in ("linux-ts", "sfs"):
            values = [v for _, v in r.curves[name]]
            assert values[0] < values[1] < values[2]

    def test_sfs_sits_above_time_sharing(self):
        r = fig7_ctxswitch.run(ring_sizes=(2, 50), passes=300)
        ts = dict(r.curves["linux-ts"])
        sfs = dict(r.curves["sfs"])
        for n in (2, 50):
            assert sfs[n] > ts[n]

    def test_stays_in_papers_band(self):
        r = fig7_ctxswitch.run(ring_sizes=(50,), passes=300)
        for name in ("linux-ts", "sfs"):
            assert dict(r.curves[name])[50] < 10e-6

    def test_render(self):
        r = fig7_ctxswitch.run(ring_sizes=(2, 8), passes=200)
        assert "Figure 7" in fig7_ctxswitch.render(r)
