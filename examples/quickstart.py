#!/usr/bin/env python3
"""Quickstart: proportional-share scheduling on a simulated SMP.

Creates a dual-processor machine running Surplus Fair Scheduling,
starts three compute-bound threads with weights 1:2:1, runs for 30
simulated seconds, and prints the CPU shares — which track the weights.

Run:  python examples/quickstart.py
"""

from repro.core import SurplusFairScheduler
from repro.sim import Machine, Task
from repro.workloads import Infinite


def main() -> None:
    # A dual-processor machine with the paper's 200 ms quantum.
    machine = Machine(SurplusFairScheduler(), cpus=2, quantum=0.2)

    tasks = [
        machine.add_task(Task(Infinite(), weight=1, name="editor")),
        machine.add_task(Task(Infinite(), weight=2, name="database")),
        machine.add_task(Task(Infinite(), weight=1, name="batch")),
    ]

    machine.run_until(30.0)

    total = sum(t.service for t in tasks)
    print("30 simulated seconds on 2 CPUs (total capacity: 60 CPU-s)")
    print(f"machine fully utilized: {total:.1f} CPU-s consumed\n")
    print(f"{'task':<10} {'weight':>6} {'service':>9} {'share':>7} {'ideal':>7}")
    weight_sum = sum(t.weight for t in tasks)
    for t in tasks:
        share = t.service / total
        ideal = t.weight / weight_sum
        print(
            f"{t.name:<10} {t.weight:>6.0f} {t.service:>8.2f}s "
            f"{share:>6.1%} {ideal:>6.1%}"
        )

    # Weights can change on the fly (the paper's setweight syscall).
    # Note 6/9 > 1/2: the request exceeds one processor, so the weight
    # readjustment algorithm (§2.1) caps batch's share at 1/2 — a single
    # thread cannot use more than one CPU.
    machine.change_weight(tasks[2], 6.0)
    before = tasks[2].service
    machine.run_until(60.0)
    share = (tasks[2].service - before) / 60.0  # of 2 CPUs over 30 s
    print(
        "\nafter setweight(batch, 6): batch's machine share becomes "
        f"{share:.1%} (requested 6/9 = 66.7% is infeasible on 2 CPUs; "
        "readjusted cap = 50%)"
    )


if __name__ == "__main__":
    main()
