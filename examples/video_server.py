#!/usr/bin/env python3
"""Video server: application isolation across schedulers (cf. Fig. 6(b)).

A streaming server decodes an MPEG-1 clip while a parallel build
(``make -j``) hammers the same dual-processor box. We sweep the number
of concurrent compile jobs under three schedulers and print the frame
rate each sustains:

- SFS with a large decoder weight pins the decoder to (effectively) a
  full processor — the frame rate stays flat;
- the Linux 2.2 time-sharing scheduler splits the machine evenly among
  all processes — the frame rate collapses as jobs are added;
- round-robin behaves like time sharing without the interactivity bonus.

Run:  python examples/video_server.py
"""

import random

from repro.analysis import line_chart
from repro.core import SurplusFairScheduler
from repro.schedulers import LinuxTimeSharingScheduler, RoundRobinScheduler
from repro.sim import Machine, Task
from repro.workloads import CompileJob, MpegDecoder

HORIZON = 30.0
WARMUP = 2.0
JOB_COUNTS = (0, 2, 4, 6, 8, 10)

SCHEDULERS = {
    "sfs": SurplusFairScheduler,
    "linux-ts": LinuxTimeSharingScheduler,
    "round-robin": RoundRobinScheduler,
}


def frame_rate(scheduler_name: str, n_jobs: int) -> float:
    machine = Machine(SCHEDULERS[scheduler_name](), cpus=2, quantum=0.2,
                      record_events=False)
    decoder = MpegDecoder(frame_cost=0.027, target_fps=30.0)
    machine.add_task(Task(decoder, weight=100, name="decoder"))
    for i in range(n_jobs):
        machine.add_task(
            Task(CompileJob(random.Random(100 + i)), weight=1, name=f"cc-{i}")
        )
    machine.run_until(HORIZON)
    return decoder.achieved_fps(WARMUP, HORIZON)


def main() -> None:
    curves: dict[str, list[tuple[float, float]]] = {}
    print(f"{'jobs':>4}  " + "  ".join(f"{n:>11}" for n in SCHEDULERS))
    rows = {n: [] for n in SCHEDULERS}
    for n_jobs in JOB_COUNTS:
        for name in SCHEDULERS:
            rows[name].append(frame_rate(name, n_jobs))
        print(
            f"{n_jobs:>4}  "
            + "  ".join(f"{rows[name][-1]:>9.1f} fps" for name in SCHEDULERS)
        )
    for name in SCHEDULERS:
        curves[name] = [(float(n), fps) for n, fps in zip(JOB_COUNTS, rows[name])]
    print()
    print(
        line_chart(
            curves,
            title="decoder frame rate vs parallel compile jobs",
            xlabel="compile jobs",
            ylabel="fps",
        )
    )


if __name__ == "__main__":
    main()
