#!/usr/bin/env python3
"""Interactive desktop: response times under batch load (cf. Fig. 6(c)).

A user types into an editor (I/O-bound interactive task) while batch
simulations grind in the background. We compare the editor's response
time distribution under SFS and the Linux 2.2 time-sharing scheduler,
sweeping the background load — including the percentiles the mean
hides.

Run:  python examples/interactive_desktop.py
"""

import random

from repro.core import SurplusFairScheduler
from repro.schedulers import LinuxTimeSharingScheduler
from repro.sim import Machine, Task
from repro.workloads import DisksimBatch, Interactive

HORIZON = 120.0


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def run(scheduler, n_batch: int) -> list[float]:
    machine = Machine(scheduler, cpus=2, quantum=0.2, record_events=False,
                      sample_service=False)
    editor = Interactive(think_time=0.4, burst=0.006, rng=random.Random(42))
    machine.add_task(Task(editor, weight=1, name="editor"))
    for i in range(n_batch):
        machine.add_task(Task(DisksimBatch(), weight=1, name=f"sim-{i}"))
    machine.run_until(HORIZON)
    return editor.response_times


def main() -> None:
    print("editor response times (ms): mean / p50 / p95 / max\n")
    print(f"{'batch jobs':>10}  {'SFS':>26}  {'Linux time sharing':>26}")
    for n_batch in (1, 2, 4, 8, 12):
        stats = []
        for scheduler in (SurplusFairScheduler(), LinuxTimeSharingScheduler()):
            rts = run(scheduler, n_batch)
            stats.append(
                f"{1e3 * sum(rts) / len(rts):5.1f} /"
                f"{1e3 * percentile(rts, 0.5):5.1f} /"
                f"{1e3 * percentile(rts, 0.95):5.1f} /"
                f"{1e3 * max(rts):5.1f}"
            )
        print(f"{n_batch:>10}  {stats[0]:>26}  {stats[1]:>26}")
    print(
        "\nBoth stay in the paper's 0-20 ms band: SFS gives interactive\n"
        "performance comparable to a scheduler explicitly designed to\n"
        "privilege I/O-bound processes (§4.4), while ALSO providing the\n"
        "proportional isolation time sharing lacks."
    )


if __name__ == "__main__":
    main()
