#!/usr/bin/env python3
"""Web hosting: the paper's motivating scenario (§1.1).

An ISP maps two customer web domains onto one dual-processor server.
Domain "gold" pays for 3x the capacity of domain "bronze". Each domain
runs a mix of applications: an http server (interactive request
handling), a streaming-media decoder, and background database/batch
jobs. One bronze batch job misbehaves (pure CPU spin) — SFS must keep
it from eating gold's capacity (application isolation).

Run:  python examples/web_hosting.py
"""

import random

from repro.core import SurplusFairScheduler
from repro.sim import Machine, Task
from repro.workloads import CompileJob, Infinite, Interactive, MpegDecoder

HORIZON = 60.0


def main() -> None:
    machine = Machine(SurplusFairScheduler(), cpus=2, quantum=0.2,
                      quantum_jitter=0.05)

    # Domain weights 6 (gold) vs 2 (bronze), split across their apps.
    gold_http = Interactive(think_time=0.05, burst=0.004,
                            rng=random.Random(1))
    gold_stream = MpegDecoder(frame_cost=0.02, target_fps=30.0)
    gold_db = CompileJob(random.Random(2), burst_mean=0.05, io_mean=0.002)

    bronze_http = Interactive(think_time=0.08, burst=0.004,
                              rng=random.Random(3))
    bronze_spin = Infinite()  # the misbehaving batch job

    gold = [
        machine.add_task(Task(gold_http, weight=2, name="gold-http")),
        machine.add_task(Task(gold_stream, weight=3, name="gold-stream")),
        machine.add_task(Task(gold_db, weight=1, name="gold-db")),
    ]
    bronze = [
        machine.add_task(Task(bronze_http, weight=1, name="bronze-http")),
        machine.add_task(Task(bronze_spin, weight=1, name="bronze-spin")),
    ]

    machine.run_until(HORIZON)

    gold_used = sum(t.service for t in gold)
    bronze_used = sum(t.service for t in bronze)

    print(f"simulated {HORIZON:.0f} s on 2 CPUs under SFS\n")
    print(f"{'task':<14} {'weight':>6} {'CPU-s':>8}")
    for t in gold + bronze:
        print(f"{t.name:<14} {t.weight:>6.0f} {t.service:>8.2f}")

    print(f"\ndomain gold   (weight 6): {gold_used:7.2f} CPU-s")
    print(f"domain bronze (weight 2): {bronze_used:7.2f} CPU-s")
    print("(gold's apps need less than their entitlement; SFS is")
    print(" work-conserving, so bronze's spinner may soak up the slack")
    print(" — without ever degrading gold's service:)")
    print(f"\ngold-http mean response: {1000 * gold_http.mean_response_time():.1f} ms "
          f"over {len(gold_http.responses)} requests")
    print(f"gold-stream frame rate:  {gold_stream.achieved_fps(5.0, HORIZON):.1f} fps "
          "(target 30)")
    print(f"bronze-http mean response: {1000 * bronze_http.mean_response_time():.1f} ms")

    assert gold_stream.achieved_fps(5.0, HORIZON) > 28.0, "isolation violated!"


if __name__ == "__main__":
    main()
