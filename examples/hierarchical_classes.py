#!/usr/bin/env python3
"""Hierarchical scheduling: per-class CPU shares (§5 extension).

An ISP consolidates two customers onto one dual-processor box and
sells capacity *per customer*, not per process: "gold" buys 3x
"bronze". Each customer runs whatever mix of processes they like —
including bronze spawning far more processes than gold. A single-level
proportional scheduler would need per-process weight jiggling to keep
the customer-level split; the hierarchical scheduler guarantees it
structurally, and each class picks its own internal policy.

Run:  python examples/hierarchical_classes.py
"""

from repro.analysis import gantt_chart
from repro.core import HierarchicalSurplusFairScheduler
from repro.sim import Machine, Task
from repro.workloads import Infinite

HORIZON = 30.0


def main() -> None:
    sched = HierarchicalSurplusFairScheduler()
    machine = Machine(sched, cpus=2, quantum=0.2)

    sched.add_class("gold", weight=3, policy="sfq")
    sched.add_class("bronze", weight=1, policy="rr")

    # Gold runs two processes, one twice as important as the other.
    gold_tasks = []
    for name, w in (("gold-db", 2), ("gold-batch", 1)):
        task = Task(Infinite(), weight=w, name=name)
        sched.assign(task, "gold")
        gold_tasks.append(machine.add_task(task))

    # Bronze floods the box with eight equal processes.
    bronze_tasks = []
    for i in range(8):
        task = Task(Infinite(), weight=1, name=f"bronze-{i}")
        sched.assign(task, "bronze")
        bronze_tasks.append(machine.add_task(task))

    machine.run_until(HORIZON)

    gold = sum(t.service for t in gold_tasks)
    bronze = sum(t.service for t in bronze_tasks)
    print(f"{HORIZON:.0f}s on 2 CPUs: gold={gold:.1f} CPU-s, "
          f"bronze={bronze:.1f} CPU-s")
    print(f"customer split: {gold / (gold + bronze):.1%} / "
          f"{bronze / (gold + bronze):.1%}  (sold: 75% / 25%)\n")

    print("within gold (SFQ policy, weights 2:1):")
    for t in gold_tasks:
        print(f"  {t.name:<11} w={t.weight:.0f}  {t.service:6.2f} CPU-s")
    print("within bronze (round-robin policy, 8 equal processes):")
    services = [t.service for t in bronze_tasks]
    print(f"  min {min(services):.2f} / max {max(services):.2f} CPU-s each\n")

    print(gantt_chart(machine, 10.0, 14.0, width=64))


if __name__ == "__main__":
    main()
