#!/usr/bin/env python3
"""Walk through the paper's Example 1: the infeasible weights problem.

Shows, step by step, (1) why the weight assignment 1:10 is infeasible
on two processors, (2) how plain SFQ starves an equal-weight thread for
~900 quanta when a third thread arrives, and (3) how the §2.1 weight
readjustment algorithm — or SFS — fixes it.

Run:  python examples/infeasible_weights_demo.py
"""

from repro.core import is_feasible, readjust
from repro.experiments import fig1_infeasible


def main() -> None:
    print("=" * 72)
    print("Step 1 — feasibility (Eq. 1): w_i / sum(w) <= 1/p")
    print("=" * 72)
    weights, p = [1, 10], 2
    total = sum(weights)
    for w in weights:
        verdict = "ok" if w * p <= total else "INFEASIBLE (> 1/p)"
        print(f"  weight {w:>2}: share {w}/{total} = {w / total:.3f}  -> {verdict}")
    print(f"  is_feasible({weights}, p={p}) = {is_feasible(weights, p)}")
    print(f"  readjust({weights}, p={p})    = {readjust(weights, p)}")
    print("  (thread 2 can use at most one CPU; its effective weight is capped)")

    print()
    print("=" * 72)
    print("Step 2 — what plain SFQ does (Fig. 1 scenario)")
    print("=" * 72)
    result = fig1_infeasible.run("sfq")
    print(fig1_infeasible.render(result))

    print()
    print("=" * 72)
    print("Step 3 — same scenario with weight readjustment")
    print("=" * 72)
    result = fig1_infeasible.run("sfq-readjust")
    print(fig1_infeasible.render(result))

    print()
    print("=" * 72)
    print("Step 4 — same scenario under SFS")
    print("=" * 72)
    result = fig1_infeasible.run("sfs")
    print(fig1_infeasible.render(result))


if __name__ == "__main__":
    main()
